(** Channels on top of channels (Section 8): each nested level's
    funding output is the parent split's output, so the child's commit
    transactions are floating (ANYPREVOUT) — a *constant* number of
    pre-signed transactions per level (Table 1's O(1) #Txs column),
    against O(2^k) for state-duplicating schemes. *)

module Tx = Daric_tx.Tx
module Script = Daric_script.Script
module Ledger = Daric_chain.Ledger

type level = {
  keys_a : Keys.t;
  keys_b : Keys.t;
  funding_script : Script.t;
  commit_body : Tx.t;
  commit_sigs : string * string;
  commit_script : Script.t;
  split_body : Tx.t;
  split_sigs : string * string;
  value : int;
}

type stack = {
  levels : level list;  (** outermost first *)
  base_funding : Tx.outpoint;
  rel_lock : int;
  s0 : int;
}

val txs_per_daric_level : int
val txs_daric : int -> int
val txs_with_state_duplication : int -> int

val build_level :
  rng:Daric_util.Rng.t -> value:int -> s0:int -> rel_lock:int ->
  child_funding_script:Script.t option -> level

val build :
  Ledger.t -> rng:Daric_util.Rng.t -> depth:int -> value:int -> ?s0:int ->
  ?rel_lock:int -> unit -> stack
(** Build a [depth]-level stack, minting the outermost funding on the
    ledger; all inner levels exist purely off-chain. *)

val completed_commit : level -> funding:Tx.outpoint -> Tx.t
val completed_split : level -> commit_outpoint:Tx.outpoint -> Tx.t

val close_on_chain : stack -> Ledger.t -> Tx.t list
(** Close level by level (commit, wait T, split); returns the posted
    transactions, two per level. *)
