(** Transaction-flow charts (the paper's Figures 1-3) in Graphviz DOT
    and ASCII: doubled boxes are published transactions, dashed arrows
    floating (ANYPREVOUT) spends. *)

type node = { name : string; label : string; published : bool }

type edge = {
  src : string;
  dst : string;
  edge_label : string;
  floating : bool;
}

type t = { title : string; nodes : node list; edges : edge list }

val to_dot : t -> string
val to_ascii : t -> string

val sample : unit -> t
(** Fig. 1: the notation section's example flow. *)

val daric_state : ?i:int -> ?cash:int -> unit -> t
(** Fig. 3: Daric state-i flow (funding, both commits, floating split
    and revocations). *)

val lightning_pts_state : ?i:int -> ?cash:int -> unit -> t
(** Fig. 2: Lightning with punish-then-split. *)

val of_ledger :
  Daric_chain.Ledger.t -> funding:Daric_tx.Tx.outpoint -> title:string -> t
(** The actually-executed closure graph: every accepted transaction
    reachable from the funding output. *)
