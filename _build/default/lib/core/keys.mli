(** Key material of a Daric channel party: the main pair (funding
    multisig and payouts) plus the sp/rv/rv' channel pairs of
    Appendix D. The two distinct revocation key sets are what prevent
    a party from "punishing" her own published commit. *)

module Schnorr = Daric_crypto.Schnorr

type role = Alice | Bob

val other_role : role -> role
val role_to_string : role -> string

type keypair = { sk : Schnorr.secret_key; pk : Schnorr.public_key }

val keygen : Daric_util.Rng.t -> keypair

type t = {
  main : keypair;
  sp : keypair;  (** floating split transactions (ANYPREVOUT) *)
  rv : keypair;  (** revocation branch of Alice's commits *)
  rv' : keypair;  (** revocation branch of Bob's commits *)
}

(** Public halves, as exchanged in the createInfo message. *)
type pub = {
  main_pk : Schnorr.public_key;
  sp_pk : Schnorr.public_key;
  rv_pk : Schnorr.public_key;
  rv'_pk : Schnorr.public_key;
}

val generate : Daric_util.Rng.t -> t
val pub : t -> pub

val enc : Schnorr.public_key -> string
(** The 33-byte encoding used inside scripts. *)
