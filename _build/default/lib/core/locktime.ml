(** State-number locktime encoding and channel-lifetime analysis
    (Section 4.1 and Section 8, "Channel reset").

    The state number is stored in the nLockTime of split/revocation
    transactions and in the CLTV parameter of commit-output scripts.
    Values below 500,000,000 are block heights; higher values are UNIX
    timestamps. Both the commit's CLTV and the floating transactions'
    nLockTime must be *in the past* to be publishable, which bounds the
    number of updates a channel can absorb. *)

let threshold = Daric_script.Interp.locktime_threshold

type mode = Block_height | Timestamp

let mode_of (s0 : int) : mode = if s0 < threshold then Block_height else Timestamp

(** Absolute locktime value for state [i]. Raises if the encoding would
    cross the block-height/timestamp boundary (the channel must be
    reset before that point). *)
let of_state ~(s0 : int) (i : int) : int =
  if i < 0 then invalid_arg "Locktime.of_state: negative state";
  let v = s0 + i in
  if s0 < threshold && v >= threshold then
    invalid_arg "Locktime.of_state: block-height encoding overflow";
  v

let state_of ~(s0 : int) (lock : int) : int = lock - s0

(** How many more updates the channel supports such that the latest
    state is immediately enforceable, given the current ledger height
    and timestamp. Section 4.1: ~700,000 for block-height encoding at
    today's height, ~1.15 billion for timestamp encoding — and since the
    timestamp advances one unit per second, a channel updating at most
    once per second on average never exhausts it ("unlimited
    lifetime"). *)
let remaining_updates ~(s0 : int) ~(sn : int) ~(height : int) ~(time : int) :
    int =
  match mode_of s0 with
  | Block_height -> min (threshold - 1) height - (s0 + sn)
  | Timestamp -> time - (s0 + sn)

(** With an average update inter-arrival of [seconds_per_update], does
    the channel ever run out of states? (Timestamp mode only.) *)
let unlimited_lifetime ~(seconds_per_update : float) : bool =
  seconds_per_update >= 1.0

(** Paper-quoted capacities (Section 4.1): a channel created at the
    April-2022 block height supports ~700k updates under block-height
    encoding, and ~1.15e9 under timestamp encoding before outpacing the
    clock. *)
let height_mode_capacity ~(current_height : int) : int = current_height
let timestamp_mode_capacity ~(current_time : int) : int = current_time - threshold
