(** Byte-accurate storage accounting for Table 1: measure exactly what
    the {!Party} state machine retains per channel, independent of the
    number of updates performed. *)

val sig_bytes : int
val pk_bytes : int
val keypair_bytes : int

val tx_bytes : Daric_tx.Tx.t -> int
(** Non-witness plus witness serialized bytes. *)

val split_bytes : Party.split_data -> int
val update_ctx_bytes : Party.update_ctx -> int

val chan_bytes : Party.chan -> int
(** Total bytes a party retains for one channel. *)

val party_bytes : Party.t -> id:string -> int
(** {!chan_bytes} by channel id (0 if unknown). *)
