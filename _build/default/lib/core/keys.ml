(** Key material of a Daric channel party.

    Per Appendix D, each party holds, besides the main key pair used for
    the funding multisig and revocation payout, three channel key pairs:
    - [sp]: signs the floating split transactions (ANYPREVOUT),
    - [rv]: revocation keys appearing in the script of *A's* commit
      transactions,
    - [rv']: revocation keys appearing in the script of *B's* commit
      transactions.

    The two distinct revocation key sets are what prevents a party from
    "punishing" her own published commit: A's floating revocation
    transaction carries rv'-signatures and therefore only matches the
    revocation branch of B's commits, and vice versa. *)

module Schnorr = Daric_crypto.Schnorr

type role = Alice | Bob

let other_role = function Alice -> Bob | Bob -> Alice
let role_to_string = function Alice -> "A" | Bob -> "B"

type keypair = { sk : Schnorr.secret_key; pk : Schnorr.public_key }

let keygen rng =
  let sk, pk = Schnorr.keygen rng in
  { sk; pk }

type t = {
  main : keypair;
  sp : keypair;
  rv : keypair;
  rv' : keypair;
}

(** Public halves, as exchanged in the createInfo message. *)
type pub = {
  main_pk : Schnorr.public_key;
  sp_pk : Schnorr.public_key;
  rv_pk : Schnorr.public_key;
  rv'_pk : Schnorr.public_key;
}

let generate (rng : Daric_util.Rng.t) : t =
  { main = keygen rng; sp = keygen rng; rv = keygen rng; rv' = keygen rng }

let pub (t : t) : pub =
  { main_pk = t.main.pk; sp_pk = t.sp.pk; rv_pk = t.rv.pk; rv'_pk = t.rv'.pk }

(** Byte encodings used inside scripts (33 bytes each). *)
let enc = Schnorr.encode_public_key
