(** Transaction-flow charts (Figures 1-3) in Graphviz DOT and ASCII.

    Doubled boxes are published transactions, single boxes unpublished
    ones, and dashed arrows indicate floating (ANYPREVOUT) spends, as
    in the paper's chart conventions (Fig. 1). *)

type node = {
  name : string;
  label : string;
  published : bool;
}

type edge = {
  src : string;
  dst : string;
  edge_label : string;
  floating : bool;
}

type t = { title : string; nodes : node list; edges : edge list }

let to_dot (g : t) : string =
  let b = Buffer.create 512 in
  Buffer.add_string b (Fmt.str "digraph %S {\n  rankdir=LR;\n  node [shape=box fontname=\"monospace\"];\n" g.title);
  List.iter
    (fun n ->
      Buffer.add_string b
        (Fmt.str "  %s [label=%S%s];\n" n.name n.label
           (if n.published then " peripheries=2" else "")))
    g.nodes;
  List.iter
    (fun e ->
      Buffer.add_string b
        (Fmt.str "  %s -> %s [label=%S%s];\n" e.src e.dst e.edge_label
           (if e.floating then " style=dashed" else "")))
    g.edges;
  Buffer.add_string b "}\n";
  Buffer.contents b

let to_ascii (g : t) : string =
  let b = Buffer.create 512 in
  Buffer.add_string b (Fmt.str "== %s ==\n" g.title);
  List.iter
    (fun n ->
      Buffer.add_string b
        (Fmt.str "  [%s] %s%s\n" n.name n.label
           (if n.published then "  (published)" else "")))
    g.nodes;
  List.iter
    (fun e ->
      Buffer.add_string b
        (Fmt.str "  %s %s %s   %s\n" e.src
           (if e.floating then "~~>" else "-->")
           e.dst e.edge_label))
    g.edges;
  Buffer.contents b

(** Fig. 1: the sample flow of the notation section — a published TX
    whose two-subcondition output can go to TX' (A&B after T) or to a
    floating TX'' (C after absolute time i). *)
let sample () : t =
  { title = "Fig 1: sample transaction flow";
    nodes =
      [ { name = "TX"; label = "TX\nout: a+b"; published = true };
        { name = "TXp"; label = "TX'\n(pkA & pkB) after T"; published = false };
        { name = "TXpp"; label = "TX''\npkC, nLT = i (floating)"; published = false } ];
    edges =
      [ { src = "TX"; dst = "TXp"; edge_label = "T+ , pkA&pkB"; floating = false };
        { src = "TX"; dst = "TXpp"; edge_label = "i>= , pkC"; floating = true } ] }

(** Fig. 3: Daric state-i transaction flow: funding, the two commits,
    the floating split and the two floating revocation transactions. *)
let daric_state ?(i = 1) ?(cash = 100_000) () : t =
  let cm name owner rev =
    { name;
      label =
        Fmt.str "TX_CM,%d^%s\nout: %d (CLTV S0+%d)\nrev keys: %s" i owner cash i
          rev;
      published = false }
  in
  { title = Fmt.str "Fig 3: Daric channel, state %d" i;
    nodes =
      [ { name = "FU"; label = Fmt.str "TX_FU\nout: %d, 2-of-2" cash; published = true };
        cm "CMA" "A" "(RevA,RevB)";
        cm "CMB" "B" "(Rev'A,Rev'B)";
        { name = "SP";
          label = Fmt.str "TX_SP,%d (floating)\nnLT = S0+%d\nout: state outputs" i i;
          published = false };
        { name = "RVA";
          label = Fmt.str "TX_RV,%d^A (floating)\nnLT = S0+%d\nout: %d -> A" i i cash;
          published = false };
        { name = "RVB";
          label = Fmt.str "TX_RV,%d^B (floating)\nnLT = S0+%d\nout: %d -> B" i i cash;
          published = false } ];
    edges =
      [ { src = "FU"; dst = "CMA"; edge_label = "pkA & pkB"; floating = false };
        { src = "FU"; dst = "CMB"; edge_label = "pkA & pkB"; floating = false };
        { src = "CMA"; dst = "SP"; edge_label = "T+, SplA & SplB"; floating = true };
        { src = "CMB"; dst = "SP"; edge_label = "T+, SplA & SplB"; floating = true };
        { src = "CMA"; dst = "RVB"; edge_label = "RevA & RevB (j<=i)"; floating = true };
        { src = "CMB"; dst = "RVA"; edge_label = "Rev'A & Rev'B (j<=i)"; floating = true } ] }

(** Fig. 2: Lightning with punish-then-split — per-state split and
    revocation transactions, duplicated per party. *)
let lightning_pts_state ?(i = 1) ?(cash = 100_000) () : t =
  { title = Fmt.str "Fig 2: Lightning punish-then-split, state %d" i;
    nodes =
      [ { name = "FU"; label = Fmt.str "TX_FU\nout: %d, 2-of-2" cash; published = true };
        { name = "CMA"; label = Fmt.str "TX_CM,%d^A" i; published = false };
        { name = "CMB"; label = Fmt.str "TX_CM,%d^B" i; published = false };
        { name = "SPA"; label = Fmt.str "TX_SP,%d^A\nstate outputs" i; published = false };
        { name = "SPB"; label = Fmt.str "TX_SP,%d^B\nstate outputs" i; published = false };
        { name = "RVA"; label = Fmt.str "TX_RV,%d^A\n%d -> A" i cash; published = false };
        { name = "RVB"; label = Fmt.str "TX_RV,%d^B\n%d -> B" i cash; published = false } ];
    edges =
      [ { src = "FU"; dst = "CMA"; edge_label = "pkA & pkB"; floating = false };
        { src = "FU"; dst = "CMB"; edge_label = "pkA & pkB"; floating = false };
        { src = "CMA"; dst = "SPA"; edge_label = "T+"; floating = false };
        { src = "CMB"; dst = "SPB"; edge_label = "T+"; floating = false };
        { src = "CMA"; dst = "RVB"; edge_label = "rev secret i"; floating = false };
        { src = "CMB"; dst = "RVA"; edge_label = "rev secret i"; floating = false } ] }

(** Render the actually-executed closure of a channel from the ledger:
    every accepted transaction that traces back to the funding output. *)
let of_ledger (ledger : Daric_chain.Ledger.t) ~(funding : Daric_tx.Tx.outpoint)
    ~(title : string) : t =
  let module Tx = Daric_tx.Tx in
  let nodes = ref [] and edges = ref [] in
  let name_of txid = "tx_" ^ Daric_util.Hex.encode (String.sub txid 0 4) in
  let rec follow (op : Tx.outpoint) (src : string option) =
    match Daric_chain.Ledger.spender_of ledger op with
    | None -> ()
    | Some tx ->
        let txid = Tx.txid tx in
        let n = name_of txid in
        if not (List.exists (fun x -> x.name = n) !nodes) then begin
          nodes :=
            { name = n;
              label =
                Fmt.str "%s\nnLT=%d, %d WU" (Daric_util.Hex.short txid)
                  tx.Tx.locktime (Tx.weight tx);
              published = true }
            :: !nodes;
          (match src with
          | Some s ->
              edges := { src = s; dst = n; edge_label = ""; floating = false } :: !edges
          | None -> ());
          List.iteri (fun vout _ -> follow { Tx.txid; vout } (Some n)) tx.Tx.outputs
        end
        else
          match src with
          | Some s ->
              edges := { src = s; dst = n; edge_label = ""; floating = false } :: !edges
          | None -> ()
  in
  nodes := [ { name = "funding"; label = "funding output"; published = true } ];
  follow funding (Some "funding");
  { title; nodes = List.rev !nodes; edges = List.rev !edges }
