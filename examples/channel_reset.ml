(* Channel lifetime and off-chain reset (Sections 4.1 and 8).

   The state number lives in absolute locktimes: block-height encoding
   caps a channel at roughly the current block height worth of updates;
   timestamp encoding at ~1.15 billion — and since the clock advances
   one unit per second, a channel updating at most once per second on
   average never runs out.

   When a channel does approach exhaustion, the parties *reset* it
   off-chain: they update to a state whose single output is a fresh
   2-of-2 — the funding output of a nested Daric channel whose state
   numbers restart at S0. Because the parent's split transaction is
   floating (its txid unknown until closure), the nested channel's
   commit transactions must be floating too; this example builds and
   verifies them at the transaction level.

   Run with: dune exec examples/channel_reset.exe *)

module Tx = Daric_tx.Tx
module Sighash = Daric_tx.Sighash
module Script = Daric_script.Script
module Ledger = Daric_chain.Ledger
module Party = Daric_core.Party
module Driver = Daric_core.Driver
module Txs = Daric_core.Txs
module Keys = Daric_core.Keys
module Locktime = Daric_core.Locktime

let () =
  (* 1. Lifetime arithmetic (Section 4.1). *)
  Fmt.pr "block-height encoding at height 700,000: %d updates available@."
    (Locktime.height_mode_capacity ~current_height:700_000);
  Fmt.pr "timestamp encoding at t = 1.65e9: %d updates available@."
    (Locktime.timestamp_mode_capacity ~current_time:1_650_000_000);
  Fmt.pr "unlimited lifetime at <= 1 update/second: %b@.@."
    (Locktime.unlimited_lifetime ~seconds_per_update:1.0);

  (* 2. A channel nearing exhaustion. *)
  let d = Driver.create ~delta:1 ~seed:808 () in
  let alice = Party.create ~pid:"alice" ~seed:1 () in
  let bob = Party.create ~pid:"bob" ~seed:2 () in
  Driver.add_party d alice;
  Driver.add_party d bob;
  Driver.open_channel d ~id:"old" ~alice ~bob ~bal_a:50_000 ~bal_b:50_000 ();
  assert (Driver.run_until_operational d ~id:"old" ~alice ~bob);
  let c = Party.chan_exn alice "old" in
  let l = Driver.ledger d in
  Fmt.pr "channel 'old': %d updates remaining before outpacing the clock@."
    (Locktime.remaining_updates ~s0:c.Party.cfg.s0 ~sn:c.Party.sn
       ~height:(Ledger.height l) ~time:(Ledger.time l));

  (* 3. The reset update: the new state is one 2-of-2 output under
     fresh keys — the nested channel's funding output. *)
  let rng = Daric_util.Rng.create ~seed:55 in
  let nested_a = Keys.generate rng and nested_b = Keys.generate rng in
  let nested_funding_script =
    Script.multisig_2 (Keys.enc nested_a.Keys.main.pk) (Keys.enc nested_b.Keys.main.pk)
  in
  let reset_state =
    [ { Tx.value = 100_000; spk = Tx.P2wsh (Script.hash nested_funding_script) } ]
  in
  assert (Driver.update_channel d ~id:"old" ~initiator:alice ~responder:bob
            ~theta:reset_state);
  Fmt.pr "@.reset update committed: parent split now funds a nested channel@.";

  (* 4. The nested channel's state-0 transactions. The parent split is
     floating, so the nested commits are floating as well: ANYPREVOUT
     signatures over (nLockTime, outputs), no input bound. They restart
     at S0, regaining the full billion-update headroom. *)
  let s0 = 500_000_000 and rel_lock = 3 in
  let pub_a = Keys.pub nested_a and pub_b = Keys.pub nested_b in
  let nested_commit_script =
    Txs.commit_script_of ~role:Keys.Alice ~keys_a:pub_a ~keys_b:pub_b ~s0 ~i:0
      ~rel_lock
  in
  let nested_commit_body =
    Tx.make ~locktime:s0 ~inputs:[] ~outputs:[ { Tx.value = 100_000; spk = Tx.P2wsh (Script.hash nested_commit_script) } ] ()
  in
  let msg = Sighash.message Anyprevout nested_commit_body ~input_index:0 in
  let sig_a = Sighash.sign_message nested_a.Keys.main.sk Anyprevout msg in
  let sig_b = Sighash.sign_message nested_b.Keys.main.sk Anyprevout msg in
  Fmt.pr "nested state-0 commit pre-signed (floating, %d-byte sigs)@."
    (String.length sig_a);

  (* 5. Force-close the parent; the nested floating commit then binds
     to the parent split's output and is valid on the ledger. *)
  Driver.corrupt d "bob";
  Party.request_close alice (Driver.ctx d "alice") ~id:"old";
  Driver.run d 20;
  let fund_op = Tx.outpoint_of (Option.get c.Party.fund) 0 in
  let parent_commit = Option.get (Ledger.spender_of l fund_op) in
  let parent_split =
    Option.get (Ledger.spender_of l (Tx.outpoint_of parent_commit 0))
  in
  Fmt.pr "parent closed; its split output is the nested funding: %a@."
    Tx.pp_outpoint (Tx.outpoint_of parent_split 0);
  let nested_commit =
    Tx.make ~locktime:nested_commit_body.Tx.locktime
      ~inputs:[ Tx.input_of_outpoint ~sequence:0 (Tx.outpoint_of parent_split 0) ]
      ~outputs:nested_commit_body.Tx.outputs
      ~witnesses:
        [ [ Tx.Data ""; Tx.Data sig_a; Tx.Data sig_b;
            Tx.Wscript nested_funding_script ] ]
      ()
  in
  (match Ledger.validate l nested_commit with
  | Ok () ->
      Fmt.pr "nested channel's floating commit validates against the ledger: \
              the reset worked, state numbers restarted at 0@."
  | Error e -> Fmt.pr "ERROR: %s@." (Ledger.reject_to_string e))
