(* Quickstart: open a Daric channel, pay a few times off-chain, close
   collaboratively, and inspect what reached the ledger.

   Run with: dune exec examples/quickstart.exe *)

module Tx = Daric_tx.Tx
module Ledger = Daric_chain.Ledger
module Party = Daric_core.Party
module Driver = Daric_core.Driver
module Txs = Daric_core.Txs

let () =
  (* A driver bundles the round clock, the ledger functionality L(Δ,Σ)
     and the authenticated message network. *)
  let d = Driver.create ~delta:1 ~seed:2026 () in
  let alice = Party.create ~pid:"alice" ~seed:1 () in
  let bob = Party.create ~pid:"bob" ~seed:2 () in
  Driver.add_party d alice;
  Driver.add_party d bob;

  (* Open a 100k-satoshi channel: Alice deposits 60k, Bob 40k. *)
  Driver.open_channel d ~id:"tutorial" ~alice ~bob ~bal_a:60_000 ~bal_b:40_000 ();
  assert (Driver.run_until_operational d ~id:"tutorial" ~alice ~bob);
  Fmt.pr "channel open at round %d (funding confirmed on chain)@." (Driver.round d);

  (* Pay 5,000 sat from Alice to Bob, three times. Each payment is one
     Daric update: two new commit transactions, one new floating split
     transaction, and revocation of the previous state — all off-chain. *)
  let c = Party.chan_exn alice "tutorial" in
  let pk_a, pk_b = Party.main_pks c in
  for k = 1 to 3 do
    let theta =
      Txs.balance_state ~pk_a ~pk_b
        ~bal_a:(60_000 - (5_000 * k))
        ~bal_b:(40_000 + (5_000 * k))
    in
    assert (Driver.update_channel d ~id:"tutorial" ~initiator:alice ~responder:bob ~theta);
    Fmt.pr "payment %d: state %d, balances %d / %d@." k
      (Party.chan_exn alice "tutorial").Party.sn
      (60_000 - (5_000 * k))
      (40_000 + (5_000 * k))
  done;

  (* Storage stays constant no matter how many updates happened. *)
  Fmt.pr "alice stores %d bytes for this channel (O(1) in updates)@."
    (Daric_core.Storage.party_bytes alice ~id:"tutorial");

  (* Collaborative close: one transaction spending the funding output. *)
  Party.request_close alice (Driver.ctx d "alice") ~id:"tutorial";
  Driver.run d 10;
  assert (Driver.saw_event alice (function Party.Closed _ -> true | _ -> false));
  assert (Driver.saw_event bob (function Party.Closed _ -> true | _ -> false));

  let fund_op = Tx.outpoint_of (Option.get c.Party.fund) 0 in
  let closing = Option.get (Ledger.spender_of (Driver.ledger d) fund_op) in
  Fmt.pr "closed at round %d with one on-chain transaction (%d WU): %a@."
    (Driver.round d) (Tx.weight closing) Tx.pp closing;
  Fmt.pr "final on-chain outputs: %a@."
    Fmt.(list ~sep:comma int)
    (List.map (fun (o : Tx.output) -> o.value) closing.Tx.outputs);
  Fmt.pr "total ledger transactions for the whole session: %d@."
    (Ledger.accepted_count (Driver.ledger d))
