(* Multi-hop HTLC payment across a 3-hop Daric payment-channel network
   (Section 8, "Extending Daric to multi-hop payments").

   sender --(hop0)-- relay1 --(hop1)-- relay2 --(hop2)-- receiver

   Each hop locks an HTLC output inside the channel's split transaction
   (no state duplication, so the HTLC appears exactly once per
   channel), then the preimage settles hop by hop back to the sender.

   Run with: dune exec examples/pcn_payment.exe *)

module Tx = Daric_tx.Tx
module Party = Daric_core.Party
module Driver = Daric_core.Driver
module Multihop = Daric_pcn.Multihop

let () =
  let d = Driver.create ~delta:1 ~seed:777 () in
  let names = [ "sender"; "relay1"; "relay2"; "receiver" ] in
  let parties =
    List.mapi
      (fun i n ->
        let p = Party.create ~pid:n ~seed:(100 + i) () in
        Driver.add_party d p;
        p)
      names
  in
  let route =
    List.init 3 (fun i ->
        let payer = List.nth parties i and payee = List.nth parties (i + 1) in
        let id = Fmt.str "hop%d" i in
        Driver.open_channel d ~id ~alice:payer ~bob:payee ~bal_a:50_000
          ~bal_b:50_000 ();
        assert (Driver.run_until_operational d ~id ~alice:payer ~bob:payee);
        Fmt.pr "opened %s: %s <-> %s (50k/50k)@." id payer.Party.pid
          payee.Party.pid;
        { Multihop.channel_id = id; payer; payee })
  in
  Fmt.pr "@.routing 10,000 sat from sender to receiver...@.";
  let outcome =
    Multihop.pay d ~route ~amount:10_000 ~preimage:"invoice-1f2e3d" ~timeout:30
  in
  Fmt.pr "delivered: %b (locked %d hops, settled %d hops)@."
    outcome.Multihop.delivered outcome.Multihop.hops_locked
    outcome.Multihop.hops_settled;
  List.iter
    (fun hop ->
      let c = Party.chan_exn hop.Multihop.payer hop.Multihop.channel_id in
      let vals = List.map (fun (o : Tx.output) -> o.Tx.value) c.Party.st in
      Fmt.pr "%s final state (state %d): %a@." hop.Multihop.channel_id
        c.Party.sn
        Fmt.(list ~sep:comma int)
        vals)
    route;
  Fmt.pr "on-chain transactions used by the payment: %d (all hops stayed off-chain)@."
    (Daric_chain.Ledger.accepted_count (Driver.ledger d)
    - 9 (* 3 channels x (2 mints + funding) from setup *))
