(* Benchmark harness: regenerates every table and figure of the paper's
   evaluation (Table 1, Table 3, the Section 6.1 attack analysis, the
   Section 6.2 incentive analysis, the Section 4.1 lifetime numbers)
   and runs Bechamel micro-benchmarks over the hot operations — one
   Test.make per experiment.

   Usage:
     dune exec bench/main.exe              # everything
     dune exec bench/main.exe -- table1    # one experiment
     dune exec bench/main.exe -- table1 table3 attack incentives lifetime micro
     dune exec bench/main.exe -- table1 --full   # Table 1 up to n = 1000 *)

module Tx = Daric_tx.Tx
module I = Daric_schemes.Scheme_intf
module Harness = Daric_schemes.Harness
module Registry = Daric_schemes.Registry

let section title =
  Fmt.pr "@.%s@.%s@." title (String.make (String.length title) '=')

(* ---------------- table/figure regeneration ---------------- *)

let run_table1 ~full () =
  section "Experiment T1: Table 1 (storage, qualitative comparison)";
  let ns = if full then [ 1; 10; 100; 1000 ] else [ 1; 10; 100 ] in
  print_string (Daric_analysis.Tables.table1 ~ns ())

let run_table3 () =
  section "Experiment T3: Table 3 (closure cost and operation counts)";
  print_string (Daric_analysis.Tables.table3 ~ms:[ 0; 1; 5; 10; 100; 966 ] ());
  print_newline ();
  print_string (Daric_analysis.Tables.measured_ops_table ())

let run_attack ~full () =
  section "Experiment S6.1: HTLC-security delay attack";
  let cfg =
    if full then
      { Daric_pcn.Attack.default_config with n_channels = 40; timelock_blocks = 36 }
    else Daric_pcn.Attack.default_config
  in
  print_string (Daric_analysis.Tables.attack_report ~cfg ());
  (* profitability frontier: adversary net vs number of channels, at
     paper constants (cost is 144A regardless of N) *)
  Fmt.pr "@.profitability frontier (analytic, 3-day timelock, race p=0.5):@.";
  Fmt.pr "%-10s %-14s %-14s %-10s@." "N chans" "cost (A)" "E[revenue] (A)"
    "E[net] (A)";
  List.iter
    (fun n ->
      let cost = Daric_pcn.Attack.Analytic.cost_over_a () in
      let rev = float_of_int n *. 0.5 in
      Fmt.pr "%-10d %-14d %-14.0f %-10.0f@." n cost rev (rev -. float_of_int cost))
    [ 10; 100; 288; 400; 715 ]

(* Empirical bounded closure: rounds from a fraud (or unilateral
   close) to final resolution, swept over the ledger delay and the
   dispute window T, via the generic scenario engine. The paper's
   bound is Delta for punishment and T + Delta for closure. *)
let run_bounded_closure () =
  section "Experiment UC: bounded closure latency (rounds)";
  let (module S : I.SCHEME) = Registry.find_exn "Daric" in
  Fmt.pr "%-8s %-8s %-14s %-14s %-14s@." "delta" "T" "punish<=delta"
    "close<=T+delta" "measured(p,c)";
  List.iter
    (fun (delta, t_rel) ->
      let config =
        { I.default_config with bal_a = 50_000; bal_b = 50_000;
          rel_lock = t_rel }
      in
      let rounds close =
        match
          Harness.run ~config ~env:(I.make_env ~delta ()) (module S)
            { updates = 1; close }
        with
        | Ok { Harness.outcome = Some o; _ } when o.I.resolved -> o.I.rounds
        | _ -> -1
      in
      Fmt.pr "%-8d %-8d %-14d %-14d (%d, %d)@." delta t_rel ((2 * delta) + 1)
        (t_rel + (2 * delta) + 1) (rounds `Dishonest) (rounds `Force))
    [ (1, 3); (1, 6); (2, 5); (3, 8); (4, 10) ]

(* Cross-scheme closure outcomes: dishonest and unilateral closure for
   every registered scheme under one environment, from the registry. *)
let run_closure () =
  section "Experiment REG: closure outcomes across all schemes";
  Fmt.pr "%-12s %-22s %-22s@." "Scheme" "dishonest (rounds)" "force (rounds)";
  List.iter
    (fun (module S : I.SCHEME) ->
      let show close =
        match Harness.run_fresh (module S) { updates = 2; close } with
        | Ok { Harness.outcome = Some o; _ } ->
            Fmt.str "%s in %d"
              (if o.I.punished then "punished"
               else if o.I.resolved then "resolved"
               else "unresolved")
              o.I.rounds
        | Ok _ -> "no outcome"
        | Error e -> "error: " ^ (I.error_to_string e)
      in
      Fmt.pr "%-12s %-22s %-22s@." S.name (show `Dishonest) (show `Force))
    Registry.all

let run_incentives () =
  section "Experiment S6.2: punishment mechanism";
  print_string (Daric_analysis.Tables.incentives_report ())

let run_pcn ~full () =
  section "Extension: PCN payment-delivery simulation";
  let cfg =
    if full then
      { Daric_analysis.Pcn_sim.default_config with
        n_nodes = 16; n_channels = 26; n_payments = 80 }
    else Daric_analysis.Pcn_sim.default_config
  in
  print_string (Daric_analysis.Pcn_sim.report ~cfg ())

let run_lifetime () =
  section "Experiment T1-life: channel lifetime (Section 4.1)";
  let module L = Daric_core.Locktime in
  Fmt.pr "block-height encoding at height 700,000: %d updates@."
    (L.height_mode_capacity ~current_height:700_000);
  Fmt.pr "timestamp encoding at t=1.65e9: %d updates@."
    (L.timestamp_mode_capacity ~current_time:1_650_000_000);
  Fmt.pr "unlimited at <= 1 update/second: %b@."
    (L.unlimited_lifetime ~seconds_per_update:1.0)

(* ---------------- scale sweep (indexed monitor loop) ---------------- *)

let scale_json_file = "BENCH_scale.json"

(* Flat sorted name -> value map, same shape as BENCH_crypto.json, so
   successive PRs diff the same entries. N is zero-padded to keep the
   sorted key order equal to the numeric order. *)
let write_scale_json (samples : Daric_analysis.Scale.sample list) : unit =
  let entries =
    List.concat_map
      (fun (s : Daric_analysis.Scale.sample) ->
        let p name v = (Printf.sprintf "n%06d/%s" s.channels name, v) in
        [ p "updates-per-sec" s.updates_per_sec;
          p "monitor-per-round-s" s.monitor_seconds_per_poll;
          p "scan-per-round-extrapolated-s" s.scan_seconds_extrapolated;
          p "speedup-vs-scan"
            (if s.monitor_seconds_per_poll > 0. then
               s.scan_seconds_extrapolated /. s.monitor_seconds_per_poll
             else 0.);
          p "fraud-react-s" s.fraud_react_seconds;
          p "frauds" (float_of_int s.frauds);
          p "punished" (float_of_int s.punished);
          p "tower-bytes" (float_of_int s.tower_storage_bytes);
          p "accepted-txs" (float_of_int s.accepted_txs);
          p "gc-top-heap-words" (float_of_int s.gc.Daric_util.Memtune.top_heap_words);
          p "gc-major-collections"
            (float_of_int s.gc.Daric_util.Memtune.major_collections);
          p "gc-promoted-words" s.gc.Daric_util.Memtune.promoted_words ])
      samples
  in
  let entries = List.sort (fun (a, _) (b, _) -> String.compare a b) entries in
  let oc = open_out scale_json_file in
  let pf fmt = Printf.fprintf oc fmt in
  pf "{\n";
  pf "  \"schema\": \"daric-bench-scale/1\",\n";
  pf "  \"unit\": \"seconds unless suffixed otherwise\",\n";
  pf
    "  \"scan_note\": \"pre-index monitor cost is measured over a channel \
     sample and extrapolated linearly to N (a direct full scan at N=100000 \
     over the whole accepted history is ~1e10 list visits)\",\n";
  pf "  \"entries\": {\n";
  List.iteri
    (fun i (name, v) ->
      pf "    %S: %g%s\n" name v
        (if i = List.length entries - 1 then "" else ","))
    entries;
  pf "  }\n}\n";
  close_out oc

(* The same tiny trace under forced 1-, 2- and 4-domain pools must
   agree exactly: the sharded tick and staged assembly promise
   sequential semantics at any pool size. Checked on every scale run
   (and on runtest through the bench-scale-smoke alias). *)
let check_domain_consistency () =
  let trace () =
    let s =
      Daric_analysis.Scale.run ~channels:6 ~updates:1 ~frauds:2 ~seed:11 ()
    in
    ( s.Daric_analysis.Scale.punished,
      s.Daric_analysis.Scale.frauds,
      s.Daric_analysis.Scale.ledger_height,
      s.Daric_analysis.Scale.accepted_txs,
      s.Daric_analysis.Scale.tower_storage_bytes )
  in
  let reference = Daric_util.Dpool.with_domains 1 trace in
  List.iter
    (fun d ->
      if Daric_util.Dpool.with_domains d trace <> reference then begin
        Fmt.epr "scale: %d-domain trace diverged from sequential@." d;
        exit 1
      end)
    [ 2; 4 ];
  Fmt.pr "domain-consistency: 1-, 2- and 4-domain traces agree@."

let run_scale ~smoke ~quick ~full ~domains () =
  section "Experiment SCALE: N-channel update+monitor sweep (Daric)";
  check_domain_consistency ();
  let ns =
    if smoke then [ 24 ]
    else if quick then [ 100; 1_000 ]
    else if full then [ 100; 1_000; 10_000; 100_000 ]
    else [ 100; 1_000; 10_000 ]
  in
  (* [--domains D] forces the worker-pool size for the whole sweep (the
     default is the environment's DPOOL_DOMAINS / recommended size) —
     used to measure how updates/sec scales with the domain count. *)
  let in_pool : 'a. (unit -> 'a) -> 'a =
   fun f ->
    match domains with
    | Some d -> Daric_util.Dpool.with_domains d f
    | None -> f ()
  in
  (match domains with
  | Some d -> Fmt.pr "forced domain count: %d@." d
  | None -> ());
  let samples =
    List.map
      (fun n ->
        let s =
          in_pool (fun () ->
              Daric_analysis.Scale.run ~channels:n ~updates:1
                ~frauds:(min 8 n) ())
        in
        Fmt.pr "%a@.@." Daric_analysis.Scale.pp s;
        if s.Daric_analysis.Scale.punished <> s.Daric_analysis.Scale.frauds
        then begin
          Fmt.epr "scale: tower punished %d of %d frauds at N=%d@."
            s.Daric_analysis.Scale.punished s.Daric_analysis.Scale.frauds n;
          exit 1
        end;
        s)
      ns
  in
  write_scale_json samples;
  Fmt.pr "wrote %s@." scale_json_file

(* ---------------- memory sweep (retained heap engine) ---------------- *)

let mem_json_file = "BENCH_mem.json"

(* Same flat sorted name -> value shape as BENCH_scale.json. *)
let write_mem_json (samples : Daric_analysis.Memprobe.sample list) : unit =
  let entries =
    List.concat_map
      (fun (s : Daric_analysis.Memprobe.sample) ->
        let p name v = (Printf.sprintf "n%06d/%s" s.channels name, v) in
        [ p "retained-words-per-channel" s.retained_words_per_channel;
          p "retained-words" (float_of_int s.retained_words);
          p "top-heap-words" (float_of_int s.top_heap_words);
          p "promoted-words-per-update" s.promoted_words_per_update;
          p "major-gc-time-share" s.major_time_share;
          p "updates-per-sec" s.updates_per_sec;
          p "tower-arena-bytes" (float_of_int s.tower_arena_bytes);
          p "ledger-pack-bytes" (float_of_int s.ledger_pack_bytes);
          p "ledger-compacted-entries" (float_of_int s.ledger_compacted);
          p "intern-saved-bytes" (float_of_int s.intern_saved_bytes) ])
      samples
  in
  let entries = List.sort (fun (a, _) (b, _) -> String.compare a b) entries in
  let oc = open_out mem_json_file in
  let pf fmt = Printf.fprintf oc fmt in
  pf "{\n";
  pf "  \"schema\": \"daric-bench-mem/1\",\n";
  pf "  \"unit\": \"words/bytes/ratios as suffixed\",\n";
  pf
    "  \"note\": \"retained-words diffs quiesced Gc live_words around the \
     whole N-channel build (parties + packed tower arena + compacted \
     ledger + indexes); major-gc-time-share is an estimate (one timed \
     full major x majors during updates / update seconds)\",\n";
  pf "  \"entries\": {\n";
  List.iteri
    (fun i (name, v) ->
      pf "    %S: %g%s\n" name v
        (if i = List.length entries - 1 then "" else ","))
    entries;
  pf "  }\n}\n";
  close_out oc

let run_mem ~smoke ~quick ~full () =
  section "Experiment MEM: retained heap per channel (memory engine)";
  let ns =
    if smoke then [ 200 ]
    else if quick then [ 1_000 ]
    else if full then [ 1_000; 10_000; 100_000 ]
    else [ 1_000; 10_000 ]
  in
  let samples =
    List.map
      (fun n ->
        let s = Daric_analysis.Memprobe.run ~channels:n ~updates:2 () in
        Fmt.pr "%a@.@." Daric_analysis.Memprobe.pp s;
        s)
      ns
  in
  (* The packed arenas must be carrying real weight: at every N the
     tower holds one packed record per channel and the ledger has
     compacted the settled prefix of the accepted log. *)
  List.iter
    (fun (s : Daric_analysis.Memprobe.sample) ->
      if s.tower_arena_bytes <= 0 || s.ledger_compacted <= 0 then begin
        Fmt.epr "mem: packed state missing at N=%d (arena=%dB compacted=%d)@."
          s.channels s.tower_arena_bytes s.ledger_compacted;
        exit 1
      end)
    samples;
  write_mem_json samples;
  Fmt.pr "wrote %s@." mem_json_file

(* ------------- durable tower sweep (snapshot + WAL layer) ------------- *)

let tower_json_file = "BENCH_tower.json"

(* Same flat sorted shape as BENCH_scale.json so successive PRs diff
   the same entries. *)
let write_tower_json (samples : Daric_analysis.Tower_sim.sample list) : unit =
  let entries =
    List.concat_map
      (fun (s : Daric_analysis.Tower_sim.sample) ->
        let p name v = (Printf.sprintf "n%06d/%s" s.channels name, v) in
        [ p "recovery-s" s.recovery_seconds;
          p "recovery-replayed" (float_of_int s.recovery_replayed);
          p "wal-bytes-per-round" s.wal_bytes_per_round;
          p "wal-bytes-total" (float_of_int s.wal_bytes_total);
          p "snapshot-bytes" (float_of_int s.snapshot_bytes);
          p "snapshots" (float_of_int s.snapshots_taken);
          p "monitor-s" s.monitor_seconds;
          p "frauds" (float_of_int s.frauds);
          p "punished" (float_of_int s.punished);
          p "tower-bytes" (float_of_int s.tower_storage_bytes);
          p "replicas" (float_of_int s.replicas) ])
      samples
  in
  let entries = List.sort (fun (a, _) (b, _) -> String.compare a b) entries in
  let oc = open_out tower_json_file in
  let pf fmt = Printf.fprintf oc fmt in
  pf "{\n";
  pf "  \"schema\": \"daric-bench-tower/1\",\n";
  pf "  \"unit\": \"seconds unless suffixed otherwise\",\n";
  pf
    "  \"note\": \"recovery-s re-opens the probe tower's store (snapshot \
     decode + WAL replay + catch-up poll) after a simulated crash; \
     wal-bytes-per-round is the journal overhead of one monitoring \
     round\",\n";
  pf "  \"entries\": {\n";
  List.iteri
    (fun i (name, v) ->
      pf "    %S: %g%s\n" name v
        (if i = List.length entries - 1 then "" else ","))
    entries;
  pf "  }\n}\n";
  close_out oc

(* The journaled tower must be observationally identical to the plain
   one: same punished set, same chain trace, same in-RAM storage. *)
let check_durable_consistency () =
  let probe durable =
    let s =
      Daric_analysis.Scale.run ~channels:12 ~updates:1 ~frauds:3 ~seed:13
        ~durable ()
    in
    ( s.Daric_analysis.Scale.punished,
      s.Daric_analysis.Scale.frauds,
      s.Daric_analysis.Scale.ledger_height,
      s.Daric_analysis.Scale.accepted_txs,
      s.Daric_analysis.Scale.tower_storage_bytes )
  in
  if probe true <> probe false then begin
    Fmt.epr "tower: durable scale trace diverged from plain tower@.";
    exit 1
  end;
  Fmt.pr "durable-consistency: journaled and plain towers agree@."

let run_tower ~smoke ~quick ~full () =
  section "Experiment TOWER: durable replicated watchtower sweep";
  check_durable_consistency ();
  let ns =
    if smoke then [ 100 ]
    else if quick then [ 100; 1_000 ]
    else if full then [ 100; 1_000; 10_000 ]
    else [ 100; 1_000; 10_000 ]
  in
  let samples =
    List.map
      (fun n ->
        let s =
          Daric_analysis.Tower_sim.run ~channels:n ~updates:1
            ~frauds:(min 8 n) ~rounds:24 ()
        in
        Fmt.pr "%a@.@." Daric_analysis.Tower_sim.pp s;
        s)
      ns
  in
  write_tower_json samples;
  Fmt.pr "wrote %s@." tower_json_file

(* ---------------- model-checker throughput ---------------- *)

let mcheck_json_file = "BENCH_mcheck.json"

(* Same flat sorted name -> value shape as BENCH_scale.json: one
   group per checked world, states/transitions/seconds plus the
   derived states-per-sec exploration rate. *)
let write_mcheck_json (entries : Daric_mcheck.Matrix.entry list) : unit =
  let flat =
    List.concat_map
      (fun (e : Daric_mcheck.Matrix.entry) ->
        let p name v = (Printf.sprintf "%s/%s" e.Daric_mcheck.Matrix.model name, v) in
        let r = e.Daric_mcheck.Matrix.result in
        [ p "states" (float_of_int r.Daric_mcheck.Mcheck.visited);
          p "transitions" (float_of_int r.Daric_mcheck.Mcheck.transitions);
          p "seconds" e.Daric_mcheck.Matrix.seconds;
          p "states-per-sec"
            (if e.Daric_mcheck.Matrix.seconds > 0. then
               float_of_int r.Daric_mcheck.Mcheck.transitions
               /. e.Daric_mcheck.Matrix.seconds
             else 0.);
          p "counterexamples"
            (float_of_int (List.length r.Daric_mcheck.Mcheck.counterexamples))
        ])
      entries
  in
  let flat = List.sort (fun (a, _) (b, _) -> String.compare a b) flat in
  let oc = open_out mcheck_json_file in
  let pf fmt = Printf.fprintf oc fmt in
  pf "{\n";
  pf "  \"schema\": \"daric-bench-mcheck/1\",\n";
  pf "  \"unit\": \"counts and seconds; states-per-sec = transitions/s\",\n";
  pf
    "  \"note\": \"bounded exhaustive exploration; the counterexample on the \
     lightning tower is the expected punish-or-refund finding\",\n";
  pf "  \"entries\": {\n";
  List.iteri
    (fun i (name, v) ->
      pf "    %S: %g%s\n" name v
        (if i = List.length flat - 1 then "" else ","))
    flat;
  pf "  }\n}\n";
  close_out oc

let run_mcheck ~smoke () =
  let module M = Daric_mcheck.Matrix in
  section
    (if smoke then "Experiment MC: model-checker throughput (smoke)"
     else "Experiment MC: model-checker throughput");
  let mutants =
    let all = M.mutation_matrix () in
    if smoke then
      List.filter
        (fun (mu, _) -> mu = Daric_staticcheck.Daricmodel.Drop_revocation)
        all
    else all
  in
  let entries =
    (M.closure_clean () :: List.map snd mutants)
    @ (if smoke then
         List.filter_map (fun n -> M.scheme_one n) [ "Daric"; "Lightning" ]
       else M.scheme_sweep ())
    @ M.tower_sweep ()
  in
  List.iter (fun e -> Fmt.pr "%a@." M.pp_entry e) entries;
  let bad = List.filter (fun e -> not (M.ok e)) entries in
  write_mcheck_json entries;
  Fmt.pr "wrote %s@." mcheck_json_file;
  if bad <> [] then begin
    List.iter
      (fun (e : M.entry) ->
        Fmt.epr "unexpected mcheck result: %s@." e.M.model)
      bad;
    exit 1
  end

(* ---------------- Bechamel micro-benchmarks ---------------- *)

let bench_tests () =
  let open Bechamel in
  let module Group = Daric_crypto.Group in
  let module Schnorr = Daric_crypto.Schnorr in
  let rng = Daric_util.Rng.create ~seed:1 in
  let sk, pk = Schnorr.keygen rng in
  let msg = Daric_util.Rng.bytes rng 64 in
  let sg = Schnorr.sign sk msg in
  let sign =
    Test.make ~name:"schnorr-sign"
      (Staged.stage (fun () -> ignore (Schnorr.sign sk msg)))
  in
  let verify =
    Test.make ~name:"schnorr-verify"
      (Staged.stage (fun () -> ignore (Schnorr.verify pk msg sg)))
  in
  (* the pre-optimization reference paths, kept runnable so every run
     reports the before/after pair from the same machine *)
  let verify_naive =
    Test.make ~name:"schnorr-verify_naive"
      (Staged.stage (fun () -> ignore (Schnorr.verify_naive pk msg sg)))
  in
  (* keyed operations against their un-keyed (plain-path) baselines:
     the keyed side amortizes per-key validation, encodings and the
     fixed-base window table through a Keyctx; same verdicts, same
     signature bytes *)
  let kc = Daric_crypto.Keyctx.create ~sk pk in
  ignore (Daric_crypto.Keyctx.table kc);
  let sign_keyed =
    Test.make ~name:"schnorr-sign-keyed"
      (Staged.stage (fun () -> ignore (Schnorr.sign_keyed kc msg)))
  in
  let sign_keyed_naive =
    Test.make ~name:"schnorr-sign-keyed_naive"
      (Staged.stage (fun () -> ignore (Schnorr.sign sk msg)))
  in
  let verify_keyed =
    Test.make ~name:"schnorr-verify-keyed"
      (Staged.stage (fun () -> assert (Schnorr.verify_keyed kc msg sg)))
  in
  let verify_keyed_naive =
    Test.make ~name:"schnorr-verify-keyed_naive"
      (Staged.stage (fun () -> assert (Schnorr.verify pk msg sg)))
  in
  let batch_items =
    List.init 64 (fun i ->
        let sk, pk = Schnorr.keygen rng in
        let m = Daric_util.Rng.bytes rng 64 in
        ignore i;
        (pk, m, Schnorr.sign sk m))
  in
  let batch =
    Test.make ~name:"schnorr-batch-verify-64"
      (Staged.stage (fun () -> assert (Schnorr.batch_verify batch_items)))
  in
  let batch_naive =
    Test.make ~name:"schnorr-batch-verify-64_naive"
      (Staged.stage (fun () ->
           assert
             (List.for_all (fun (pk, m, s) -> Schnorr.verify_naive pk m s)
                batch_items)))
  in
  let batch_keyed_items =
    List.map
      (fun (pk, m, s) ->
        let kc = Daric_crypto.Keyctx.create pk in
        ignore (Daric_crypto.Keyctx.table kc);
        (kc, m, s))
      batch_items
  in
  let batch_keyed =
    Test.make ~name:"schnorr-batch-64-keyed"
      (Staged.stage (fun () ->
           assert (Schnorr.batch_verify_keyed batch_keyed_items)))
  in
  let batch_keyed_naive =
    Test.make ~name:"schnorr-batch-64-keyed_naive"
      (Staged.stage (fun () -> assert (Schnorr.batch_verify batch_items)))
  in
  let exp = 987_654_321 in
  let pow_fixed =
    Test.make ~name:"group-pow-g"
      (Staged.stage (fun () -> ignore (Group.pow_g exp)))
  in
  let pow_naive =
    Test.make ~name:"group-pow-g_naive"
      (Staged.stage (fun () -> ignore (Group.pow Group.g exp)))
  in
  let member = Group.pow_g 123_456 in
  let is_elt_qr =
    Test.make ~name:"group-is-element"
      (Staged.stage (fun () -> assert (Group.is_element_fast member)))
  in
  let is_elt_naive =
    Test.make ~name:"group-is-element_naive"
      (Staged.stage (fun () -> assert (Group.is_element member)))
  in
  let sha =
    Test.make ~name:"sha256-64B"
      (Staged.stage (fun () -> ignore (Daric_crypto.Sha256.digest msg)))
  in
  let txid_tx =
    Tx.make ~locktime:(500_000_123) ~inputs:[ Tx.input_of_outpoint { Tx.txid = String.make 32 'x'; vout = 0 } ] ~outputs:[ { Tx.value = 50_000; spk = Tx.P2wpkh (String.make 20 'h') };
          { Tx.value = 50_000; spk = Tx.P2wsh (String.make 32 's') } ] ()
  in
  let txid_memo =
    Test.make ~name:"txid"
      (Staged.stage (fun () -> ignore (Tx.txid txid_tx)))
  in
  let txid_naive =
    Test.make ~name:"txid_naive"
      (Staged.stage (fun () -> ignore (Tx.txid_uncached txid_tx)))
  in
  (* zero-copy encode path: the memo hands back the cached body string;
     the naive baseline re-runs the full serialization pass *)
  let tx_encode =
    Test.make ~name:"tx-encode"
      (Staged.stage (fun () -> ignore (Tx.body_serialize txid_tx)))
  in
  let tx_encode_naive =
    Test.make ~name:"tx-encode_naive"
      (Staged.stage (fun () -> ignore (Tx.body_serialize_uncached txid_tx)))
  in
  (* amortized family sighash: all three flag messages over one body —
     the memoized path computes each flag's midstate once and serves
     the rest from the per-body slot cache *)
  let sighash_flags =
    Daric_tx.Sighash.[ All; Anyprevout; Anyprevout_single ]
  in
  let sighash_family =
    Test.make ~name:"sighash-family"
      (Staged.stage (fun () ->
           List.iter
             (fun f ->
               ignore (Daric_tx.Sighash.message f txid_tx ~input_index:0))
             sighash_flags))
  in
  let sighash_family_naive =
    Test.make ~name:"sighash-family_naive"
      (Staged.stage (fun () ->
           List.iter
             (fun f ->
               ignore
                 (Daric_tx.Sighash.message_uncached f txid_tx ~input_index:0))
             sighash_flags))
  in
  (* one full channel-update round-trip per registered scheme (for
     Daric: both parties, all messages, no chain interaction) — the
     per-payment cost. Limited-lifetime schemes (Outpost) are
     recreated transparently when their update budget runs out. *)
  let scheme_update_test (module S : I.SCHEME) =
    let config =
      { I.default_config with bal_a = 1_000_000; bal_b = 1_000_000 }
    in
    let open_fresh () =
      match S.open_channel (I.make_env ()) config with
      | Ok ch -> ch
      | Error e -> failwith (I.error_to_string e)
    in
    let ch = ref (open_fresh ()) in
    let k = ref 0 in
    let step () =
      incr k;
      let bal_a, bal_b = Harness.balance_at config !k in
      match S.update !ch ~bal_a ~bal_b with
      | Ok () -> ()
      | Error _ ->
          ch := open_fresh ();
          (match S.update !ch ~bal_a ~bal_b with
          | Ok () -> ()
          | Error e -> failwith (I.error_to_string e))
    in
    Test.make
      ~name:(String.lowercase_ascii S.name ^ "-channel-update")
      (Staged.stage step)
  in
  let scheme_updates = List.map scheme_update_test Registry.all in
  (* weight accounting of a full dishonest closure (Table 3 path) *)
  let weights =
    Test.make ~name:"table3-weight-model"
      (Staged.stage (fun () ->
           List.iter
             (fun (s : Daric_schemes.Costmodel.scheme) ->
               ignore (Daric_schemes.Costmodel.weight (s.dishonest ~m:10)))
             Daric_schemes.Costmodel.all))
  in
  [ sign; verify; verify_naive; sign_keyed; sign_keyed_naive; verify_keyed;
    verify_keyed_naive; batch; batch_naive; batch_keyed; batch_keyed_naive;
    pow_fixed; pow_naive; is_elt_qr; is_elt_naive; sha; txid_memo; txid_naive;
    tx_encode; tx_encode_naive; sighash_family; sighash_family_naive ]
  @ scheme_updates @ [ weights ]

(* Machine-readable perf trajectory: a flat name -> ns/run map written
   next to the run so successive PRs can diff the same entries. *)
let bench_json_file = "BENCH_crypto.json"

let write_bench_json ~(quota_s : float) (entries : (string * float) list) :
    unit =
  let oc = open_out bench_json_file in
  let pf fmt = Printf.fprintf oc fmt in
  pf "{\n";
  pf "  \"schema\": \"daric-bench-crypto/1\",\n";
  pf "  \"quota_s\": %g,\n" quota_s;
  pf "  \"unit\": \"ns/run\",\n";
  pf "  \"entries\": {\n";
  List.iteri
    (fun i (name, est) ->
      pf "    %S: %.1f%s\n" name est
        (if i = List.length entries - 1 then "" else ","))
    entries;
  pf "  }\n}\n";
  close_out oc

(* Every entry the perf-acceptance checks depend on must survive into
   the JSON; a missing one means the harness bit-rotted. One
   channel-update entry per registered scheme. *)
let required_entries =
  [ "schnorr-sign"; "schnorr-verify"; "schnorr-verify_naive";
    "schnorr-sign-keyed"; "schnorr-sign-keyed_naive";
    "schnorr-verify-keyed"; "schnorr-verify-keyed_naive";
    "schnorr-batch-verify-64"; "schnorr-batch-verify-64_naive";
    "schnorr-batch-64-keyed"; "schnorr-batch-64-keyed_naive";
    "txid"; "txid_naive"; "tx-encode"; "tx-encode_naive";
    "sighash-family"; "sighash-family_naive" ]
  @ List.map
      (fun (module S : I.SCHEME) ->
        String.lowercase_ascii S.name ^ "-channel-update")
      Registry.all

let run_micro ~smoke ~quick () =
  section
    (if smoke then "Micro-benchmarks (Bechamel, smoke quota)"
     else if quick then "Micro-benchmarks (Bechamel, quick quota)"
     else "Micro-benchmarks (Bechamel)");
  let open Bechamel in
  let open Toolkit in
  let instances = Instance.[ monotonic_clock ] in
  let quota_s = if smoke then 0.1 else if quick then 0.25 else 0.5 in
  let cfg =
    Benchmark.cfg ~limit:500 ~quota:(Time.second quota_s) ~kde:(Some 500) ()
  in
  let ols =
    Analyze.ols ~bootstrap:0 ~r_square:false ~predictors:Measure.[| run |]
  in
  let entries = ref [] in
  List.iter
    (fun test ->
      let results = Benchmark.all cfg instances test in
      let results = Analyze.all ols Instance.monotonic_clock results in
      Hashtbl.iter
        (fun name result ->
          match Analyze.OLS.estimates result with
          | Some [ est ] -> entries := (name, est) :: !entries
          | _ -> ())
        results)
    (bench_tests ());
  (* sorted-name order: Hashtbl.iter order is seed-dependent, sorted
     output is diffable run-to-run *)
  let entries =
    List.sort (fun (a, _) (b, _) -> String.compare a b) !entries
  in
  List.iter (fun (name, est) -> Fmt.pr "%-32s %12.0f ns/run@." name est) entries;
  write_bench_json ~quota_s entries;
  Fmt.pr "wrote %s@." bench_json_file;
  let missing =
    List.filter (fun r -> not (List.mem_assoc r entries)) required_entries
  in
  if missing <> [] then begin
    Fmt.epr "missing bench entries: %a@." Fmt.(list ~sep:comma string) missing;
    exit 1
  end

(* ---------------- driver ---------------- *)

let () =
  let args = Array.to_list Sys.argv |> List.tl in
  let full = List.mem "--full" args in
  let smoke = List.mem "--smoke" args in
  let quick = List.mem "--quick" args in
  let rec parse_domains = function
    | "--domains" :: d :: _ -> (
        match int_of_string_opt (String.trim d) with
        | Some d when d >= 1 -> Some d
        | _ ->
            Fmt.epr "bench: --domains expects a positive integer, got %S@." d;
            exit 2)
    | "--domains" :: [] ->
        Fmt.epr "bench: --domains expects a value@.";
        exit 2
    | _ :: rest -> parse_domains rest
    | [] -> None
  in
  let domains = parse_domains args in
  let rec strip_domains = function
    | "--domains" :: _ :: rest -> strip_domains rest
    | a :: rest -> a :: strip_domains rest
    | [] -> []
  in
  let args =
    strip_domains args
    |> List.filter (fun a ->
           a <> "--full" && a <> "--smoke" && a <> "--quick")
  in
  let all = args = [] in
  let want x = all || List.mem x args in
  if want "table1" then run_table1 ~full ();
  if want "table3" then run_table3 ();
  if want "attack" then run_attack ~full ();
  if want "bounded" then run_bounded_closure ();
  if want "closure" then run_closure ();
  if want "pcn" then run_pcn ~full ();
  if want "incentives" then run_incentives ();
  if want "lifetime" then run_lifetime ();
  if List.mem "csv" args then begin
    section "CSV export";
    let ns = if full then [ 1; 10; 100; 1000 ] else [ 1; 10; 100 ] in
    List.iter (Fmt.pr "wrote %s@.")
      (Daric_analysis.Csv.write_all ~ns ~dir:"results" ()
      @ [ Daric_analysis.Pcn_sim.to_csv
            (Daric_analysis.Pcn_sim.run Daric_analysis.Pcn_sim.default_config)
            ~dir:"results" ])
  end;
  (* explicit-only: the full sweep builds up to 100k channels *)
  if List.mem "scale" args then run_scale ~smoke ~quick ~full ~domains ();
  (* explicit-only: builds up to 10k channels with R+1 towers *)
  if List.mem "tower" args then run_tower ~smoke ~quick ~full ();
  (* explicit-only: the full sweep retains up to 100k channels *)
  if List.mem "mem" args then run_mem ~smoke ~quick ~full ();
  (* explicit-only: bounded exhaustive exploration of every world *)
  if List.mem "mcheck" args then run_mcheck ~smoke ();
  (* "crypto" is the explicit name for the micro suite (it is crypto-
     dominated and owns BENCH_crypto.json); --quick mirrors scale's *)
  if want "micro" || List.mem "crypto" args then run_micro ~smoke ~quick ()
