(* Differential tests for the indexed chain state and the
   domain-parallel validation path.

   A random multi-channel transaction trace (valid spends, double
   spends, wrong keys, overspends, adversarial delays) is replayed
   three ways:
   - through the indexed ledger forced to 1 domain (sequential path),
   - through the indexed ledger forced to 2 domains (optimistic
     parallel tick + rollback path),
   - through a naive reference executor reproducing the seed's pending
     semantics (a flat (due, tx) list, inline per-input validation,
     posting order),
   and all three accept/reject event streams must be byte-identical.
   On the final chain, every indexed read (spender_of,
   recorded_round_of, accepted_count, the spent log) is checked
   against its linear-scan oracle. The watchtower's cursor monitor is
   diffed against the pre-index scan monitor on a real multi-channel
   fraud scenario. *)

module Tx = Daric_tx.Tx
module Ledger = Daric_chain.Ledger
module Schnorr = Daric_crypto.Schnorr
module Sighash = Daric_tx.Sighash
module Rng = Daric_util.Rng
module Dpool = Daric_util.Dpool
module Vec = Daric_util.Vec
module Watchtower = Daric_core.Watchtower
module I = Daric_schemes.Scheme_intf
module DS = Daric_schemes.Daric_scheme

let check_b = Alcotest.(check bool)
let check_i = Alcotest.(check int)
let check_sl = Alcotest.(check (list string))

let p2wpkh pk = Tx.P2wpkh (Daric_crypto.Hash.hash160 (Schnorr.encode_public_key pk))

(* ---------------- random trace generation ---------------- *)

type trace_post = { at_round : int; tx : Tx.t; delay : int }

(* Build a trace statically: candidate outpoints start from the mints
   and grow with each generated transaction's outputs, whether or not
   that transaction would be accepted — so the trace contains valid
   spends, double spends, spends of never-recorded outputs (missing
   inputs), wrong-key witnesses and overspends. *)
let gen_trace ~seed ~rounds ~keys:nkeys ~mints =
  let rng = Rng.create ~seed in
  let keys = Array.init nkeys (fun i -> Schnorr.keygen (Rng.create ~seed:(seed + 100 + i))) in
  let mint_specs =
    List.init mints (fun i ->
        let k = i mod nkeys in
        (1_000 + Rng.int rng 9_000, k))
  in
  (* candidates: (outpoint, value, key index that can spend it) *)
  let candidates = ref [] in
  let n_candidates = ref 0 in
  let add_candidate c = candidates := c :: !candidates; incr n_candidates in
  (* Mint outpoints are deterministic per fresh ledger (the synthetic
     coinbase counter starts at 1), so minting on a scratch ledger
     yields the same outpoints every replay will see. *)
  let scratch = Ledger.create ~delta:0 () in
  List.iter
    (fun (value, k) ->
      add_candidate (Ledger.mint scratch ~value ~spk:(p2wpkh (snd keys.(k))), value, k))
    mint_specs;
  let pick_candidate () =
    List.nth !candidates (Rng.int rng !n_candidates)
  in
  let posts = ref [] in
  for r = 0 to rounds - 1 do
    let n_txs = 1 + Rng.int rng 4 in
    for _ = 1 to n_txs do
      let op, value, k = pick_candidate () in
      let kind = Rng.int rng 10 in
      let sk, pk =
        if kind = 0 then keys.((k + 1) mod nkeys) (* wrong key *)
        else keys.(k)
      in
      (* sometimes spend a second candidate in the same transaction —
         its outpoint usually hashes to a different tick shard, which
         exercises the cross-shard reconciliation pass *)
      let extra =
        if kind >= 8 then
          match pick_candidate () with
          | op2, _, _ when Tx.outpoint_equal op2 op -> None
          | op2, v2, k2 -> Some (op2, v2, k2)
        else None
      in
      let out_value = if kind = 1 then value + 1 (* overspend *) else value in
      let out_value =
        match extra with Some (_, v2, _) -> out_value + v2 | None -> out_value
      in
      let k_to = Rng.int rng nkeys in
      let split = out_value > 1 && Rng.int rng 2 = 0 in
      let outputs =
        if split then
          let v1 = 1 + Rng.int rng (out_value - 1) in
          [ { Tx.value = v1; spk = p2wpkh (snd keys.(k_to)) };
            { Tx.value = out_value - v1;
              spk = p2wpkh (snd keys.((k_to + 1) mod nkeys)) } ]
        else [ { Tx.value = out_value; spk = p2wpkh (snd keys.(k_to)) } ]
      in
      let inputs =
        Tx.input_of_outpoint op
        :: (match extra with
           | Some (op2, _, _) -> [ Tx.input_of_outpoint op2 ]
           | None -> [])
      in
      let body = Tx.make ~inputs ~outputs () in
      let wit0 =
        let sg = Sighash.sign sk All body ~input_index:0 in
        [ Tx.Data sg; Tx.Data (Schnorr.encode_public_key pk) ]
      in
      let witnesses =
        match extra with
        | None -> [ wit0 ]
        | Some (_, _, k2) ->
            let sk2, pk2 = keys.(k2) in
            let sg2 = Sighash.sign sk2 All body ~input_index:1 in
            [ wit0; [ Tx.Data sg2; Tx.Data (Schnorr.encode_public_key pk2) ] ]
      in
      let tx = Tx.with_witnesses body witnesses in
      List.iteri
        (fun vout (o : Tx.output) ->
          add_candidate (Tx.outpoint_of tx vout, o.value, k_to))
        outputs;
      posts := { at_round = r; tx; delay = Rng.int rng 4 } :: !posts
    done
  done;
  (mint_specs, keys, List.rev !posts, List.rev !candidates)

let show_event = function
  | Ledger.Accepted tx -> Printf.sprintf "A:%s" (Daric_util.Hex.short (Tx.txid tx))
  | Ledger.Rejected (tx, r) ->
      Printf.sprintf "R:%s:%s"
        (Daric_util.Hex.short (Tx.txid tx))
        (Ledger.reject_to_string r)

(* Replay the trace through the real ledger; returns the per-round
   event stream and the final ledger. *)
let replay_indexed ~delta (mint_specs, keys, posts, _) =
  let l = Ledger.create ~delta () in
  List.iter
    (fun (value, k) -> ignore (Ledger.mint l ~value ~spk:(p2wpkh (snd keys.(k)))))
    mint_specs;
  let stream = ref [] in
  let rounds = 1 + List.fold_left (fun m p -> max m p.at_round) 0 posts in
  for r = 0 to rounds + delta do
    List.iter
      (fun p -> if p.at_round = r then Ledger.post l p.tx ~delay:p.delay)
      posts;
    let evs = Ledger.tick l in
    let now = Ledger.height l in
    List.iter
      (fun e -> stream := Printf.sprintf "%d/%s" now (show_event e) :: !stream)
      evs
  done;
  (List.rev !stream, l)

(* Naive reference executor: the seed's semantics — a flat pending
   list of (due round, tx) in posting order, inline per-input
   validation, recording as it goes. The ledger it drives never sees
   posts of its own; [tick] only advances the clock. *)
let replay_reference ~delta (mint_specs, keys, posts, _) =
  let l = Ledger.create ~delta () in
  List.iter
    (fun (value, k) -> ignore (Ledger.mint l ~value ~spk:(p2wpkh (snd keys.(k)))))
    mint_specs;
  let pending = ref [] (* (due, tx), posting order *) in
  let stream = ref [] in
  let rounds = 1 + List.fold_left (fun m p -> max m p.at_round) 0 posts in
  for r = 0 to rounds + delta do
    List.iter
      (fun p ->
        if p.at_round = r then begin
          (* the seed posts with due = round + clamped delay and only
             processes pending at the tick after posting, so a 0-delay
             post still lands at the next round *)
          let delay = max 0 (min delta p.delay) in
          pending := !pending @ [ (r + max delay 1, p.tx) ]
        end)
      posts;
    ignore (Ledger.tick l);
    let now = Ledger.height l in
    let due, later = List.partition (fun (d, _) -> d <= now) !pending in
    pending := later;
    List.iter
      (fun (_, tx) ->
        let ev =
          match Ledger.validate l tx with
          | Ok () ->
              Ledger.record l tx;
              Ledger.Accepted tx
          | Error reason -> Ledger.Rejected (tx, reason)
        in
        stream := Printf.sprintf "%d/%s" now (show_event ev) :: !stream)
      due
  done;
  (List.rev !stream, l)

let test_event_stream_differential () =
  List.iter
    (fun seed ->
      let delta = 2 in
      let trace = gen_trace ~seed ~rounds:12 ~keys:5 ~mints:8 in
      let ref_stream, ref_l = replay_reference ~delta trace in
      List.iter
        (fun domains ->
          let stream, l =
            Dpool.with_domains domains (fun () -> replay_indexed ~delta trace)
          in
          check_sl
            (Printf.sprintf "%d-domain tick = reference" domains)
            ref_stream stream;
          check_i
            (Printf.sprintf "same accepted count (%d domains)" domains)
            (Ledger.accepted_count ref_l) (Ledger.accepted_count l))
        [ 1; 2; 4 ])
    [ 3; 17; 42; 2026 ]

let test_indexed_reads_vs_scan () =
  let seed = 7 in
  let trace = gen_trace ~seed ~rounds:15 ~keys:4 ~mints:6 in
  let _, l = Dpool.with_domains 2 (fun () -> replay_indexed ~delta:2 trace) in
  let _, _, _, candidates = trace in
  (* indexed spender lookup vs the full-history linear scan *)
  List.iter
    (fun (op, _, _) ->
      let a = Ledger.spender_of l op in
      let b = Ledger.spender_of_scan l op in
      check_b "spender_of = spender_of_scan" true
        (match (a, b) with
        | None, None -> true
        | Some x, Some y -> String.equal (Tx.txid x) (Tx.txid y)
        | _ -> false))
    candidates;
  (* recorded rounds and counts vs the accepted list *)
  let acc = Ledger.accepted l in
  check_i "accepted_count = |accepted|" (List.length acc)
    (Ledger.accepted_count l);
  List.iter
    (fun (r, tx) ->
      check_b "recorded_round_of matches accepted" true
        (Ledger.recorded_round_of l (Tx.txid tx) = Some r))
    acc;
  check_b "unknown txid has no recorded round" true
    (Ledger.recorded_round_of l (String.make 32 'z') = None);
  (* the spent log is exactly the accepted transactions' inputs, in
     acceptance order *)
  let from_log = ref [] in
  let final = Ledger.iter_spent_since l ~cursor:0 (fun o -> from_log := o :: !from_log) in
  let expected =
    List.concat_map
      (fun (_, tx) -> List.map (fun (i : Tx.input) -> i.Tx.prevout) tx.Tx.inputs)
      acc
  in
  check_i "spent log length" (List.length expected) final;
  check_b "spent log contents" true (List.rev !from_log = expected);
  (* a cursor at the end sees nothing new *)
  let n = ref 0 in
  ignore (Ledger.iter_spent_since l ~cursor:final (fun _ -> incr n));
  check_i "cursor at end yields nothing" 0 !n

let test_accepted_view_cached () =
  let l = Ledger.create ~delta:1 () in
  let _, pk = Schnorr.keygen (Rng.create ~seed:1) in
  ignore (Ledger.mint l ~value:10 ~spk:(p2wpkh pk));
  let v1 = Ledger.accepted l in
  check_b "same physical list when unchanged" true (Ledger.accepted l == v1);
  ignore (Ledger.mint l ~value:11 ~spk:(p2wpkh pk));
  let v2 = Ledger.accepted l in
  check_i "view grew" 2 (List.length v2);
  check_b "rebuilt after recording" true (not (v2 == v1))

let test_checkpoint_rollback () =
  let l = Ledger.create ~delta:1 () in
  let rng = Rng.create ~seed:9 in
  let sk, pk = Schnorr.keygen rng in
  let _, pk2 = Schnorr.keygen rng in
  let op = Ledger.mint l ~value:100 ~spk:(p2wpkh pk) in
  let c = Ledger.checkpoint l in
  let body =
    Tx.make ~inputs:[ Tx.input_of_outpoint op ] ~outputs:[ { Tx.value = 100; spk = p2wpkh pk2 } ] ()
  in
  let sg = Sighash.sign sk All body ~input_index:0 in
  let tx =
    Tx.with_witnesses body [ [ Tx.Data sg; Tx.Data (Schnorr.encode_public_key pk) ] ]
  in
  Ledger.record l tx;
  check_b "spent after record" true (Ledger.spender_of l op <> None);
  check_i "accepted grew" 2 (Ledger.accepted_count l);
  Ledger.rollback l c;
  check_b "unspent after rollback" true (Ledger.is_unspent l op);
  check_b "spender index rolled back" true (Ledger.spender_of l op = None);
  check_b "txid index rolled back" true
    (Ledger.recorded_round_of l (Tx.txid tx) = None);
  check_i "accepted count restored" 1 (Ledger.accepted_count l);
  check_i "spent log restored" 1 (Ledger.spent_log_length l);
  (* the chain continues normally after a rollback *)
  check_b "tx still valid" true (Ledger.validate l tx = Ok ());
  Ledger.post l tx ~delay:0;
  ignore (Ledger.tick l);
  check_b "accepted after re-post" true (Ledger.spender_of l op <> None)

(* Bucketed pending must reproduce the flat-list semantics exactly:
   delay 0 and 1 land at the next tick, delay d at the d-th. *)
let test_pending_buckets () =
  List.iter
    (fun delay ->
      let l = Ledger.create ~delta:5 () in
      let sk, pk = Schnorr.keygen (Rng.create ~seed:1) in
      let op = Ledger.mint l ~value:10 ~spk:(p2wpkh pk) in
      let body =
        Tx.make ~inputs:[ Tx.input_of_outpoint op ] ~outputs:[ { Tx.value = 10; spk = p2wpkh pk } ] ()
      in
      let sg = Sighash.sign sk All body ~input_index:0 in
      let tx =
        Tx.with_witnesses body [ [ Tx.Data sg; Tx.Data (Schnorr.encode_public_key pk) ] ]
      in
      Ledger.post l tx ~delay;
      let landing = max delay 1 in
      for r = 1 to landing - 1 do
        ignore r;
        ignore (Ledger.tick l);
        check_b "not yet landed" true (Ledger.is_unspent l op)
      done;
      ignore (Ledger.tick l);
      check_b "landed at max(delay,1)" false (Ledger.is_unspent l op))
    [ 0; 1; 2; 5 ]

(* ---------------- watchtower differential ---------------- *)

(* Four real Daric channels on one shared environment; frauds on two.
   The cursor monitor and the pre-index scan monitor must punish the
   same channels. *)
let test_watchtower_differential () =
  let env = I.make_env ~delta:1 ~seed:5 () in
  let chans =
    List.init 4 (fun k ->
        let cfg =
          { I.default_config with
            chan_id = Printf.sprintf "wt%d" k;
            party_seed = 300 + (2 * k) }
        in
        match DS.Scheme.open_channel env cfg with
        | Ok s -> s
        | Error e -> Alcotest.fail (I.error_to_string e))
  in
  List.iteri
    (fun k s ->
      match DS.Scheme.update s ~bal_a:(400_000 + k) ~bal_b:(600_000 - k) with
      | Ok () -> ()
      | Error e -> Alcotest.fail (I.error_to_string e))
    chans;
  let indexed = Watchtower.create ~wid:"indexed" () in
  let scan = Watchtower.create ~wid:"scan" () in
  List.iter
    (fun s ->
      match DS.watch_record s with
      | Some r ->
          check_b "indexed tower takes record" true (Watchtower.watch indexed r);
          check_b "scan tower takes record" true (Watchtower.watch scan r)
      | None -> Alcotest.fail "no watch record after update")
    chans;
  check_i "indexed guards all" 4 (Watchtower.guarded_count indexed);
  let post tx = Daric_chain.Ledger.post env.I.ledger tx ~delay:0 in
  let poll_both () =
    let round = Daric_chain.Ledger.height env.I.ledger in
    Watchtower.end_of_round indexed ~round ~ledger:env.I.ledger ~post;
    Watchtower.end_of_round_scan scan ~round ~ledger:env.I.ledger ~post
  in
  poll_both ();
  check_sl "no punishments yet (indexed)" [] (Watchtower.punished indexed);
  check_sl "no punishments yet (scan)" [] (Watchtower.punished scan);
  (* frauds on channels 1 and 3, both parties frozen *)
  DS.publish_revoked (List.nth chans 1);
  DS.publish_revoked (List.nth chans 3);
  I.settle env 1;
  poll_both ();
  I.settle env 1;
  poll_both ();
  let sorted t = List.sort String.compare (Watchtower.punished t) in
  check_sl "both towers punished the same channels" [ "wt1"; "wt3" ]
    (sorted indexed);
  check_sl "scan tower agrees" (sorted indexed) (sorted scan);
  (* the revocation transactions actually confirmed on chain *)
  List.iter
    (fun k ->
      let s = List.nth chans k in
      let f = DS.Scheme.funding s in
      check_b "funding spent" false (Daric_chain.Ledger.is_unspent env.I.ledger f))
    [ 1; 3 ];
  (* punishing reclaimed the two punished channels' records; unwatch
     (O(1), both index entries) reclaims a third — of 4 watches only
     the untouched channel still holds storage *)
  check_i "guarded count after punish" 2 (Watchtower.guarded_count indexed);
  Watchtower.unwatch indexed ~channel_id:"wt0";
  check_i "guarded count after unwatch" 1 (Watchtower.guarded_count indexed)

(* ---------------- utility modules ---------------- *)

let test_vec () =
  let v = Vec.create ~dummy:(-1) () in
  for i = 0 to 99 do Vec.push v i done;
  check_i "length" 100 (Vec.length v);
  check_i "get" 57 (Vec.get v 57);
  let seen = ref [] in
  Vec.iter_from v ~from:95 (fun x -> seen := x :: !seen);
  check_b "iter_from tail" true (List.rev !seen = [ 95; 96; 97; 98; 99 ]);
  Vec.truncate v 10;
  check_i "truncated" 10 (Vec.length v);
  check_b "to_list" true (Vec.to_list v = List.init 10 Fun.id);
  check_b "to_array" true (Vec.to_array v = Array.init 10 Fun.id);
  for i = 10 to 20 do Vec.push v i done;
  check_i "regrows" 21 (Vec.length v);
  Vec.clear v;
  check_i "cleared" 0 (Vec.length v);
  Vec.push v 5;
  check_b "reusable after clear" true (Vec.to_list v = [ 5 ])

let test_dpool () =
  (* forced counts drive the chunked map; results match the sequential
     fold regardless of the domain count *)
  let xs = Array.init 1000 Fun.id in
  let expect = Array.fold_left ( + ) 0 xs in
  List.iter
    (fun k ->
      Dpool.with_domains k (fun () ->
          check_i
            (Printf.sprintf "count forced to %d" k)
            k (Dpool.count ());
          let partials = Dpool.map_chunks (Array.fold_left ( + ) 0) xs in
          check_i "chunked sum" expect (Array.fold_left ( + ) 0 partials);
          check_b "all_chunks true" true
            (Dpool.all_chunks (Array.for_all (fun x -> x >= 0)) xs);
          check_b "all_chunks false" false
            (Dpool.all_chunks (Array.for_all (fun x -> x < 999)) xs);
          check_b "map_array preserves order" true
            (Dpool.map_array (fun x -> 2 * x) xs
            = Array.map (fun x -> 2 * x) xs)))
    [ 1; 2; 3 ]

exception Boom

let test_dpool_exceptions () =
  let xs = Array.init 64 Fun.id in
  (* an exception raised on a worker chunk resurfaces on the calling
     domain, for every forced count *)
  List.iter
    (fun k ->
      Dpool.with_domains k (fun () ->
          Alcotest.check_raises
            (Printf.sprintf "worker exception propagates (%d domains)" k)
            Boom
            (fun () ->
              ignore
                (Dpool.map_chunks
                   (fun chunk -> if Array.exists (fun x -> x >= 32) chunk then raise Boom else 0)
                   xs))))
    [ 1; 2; 4 ];
  (* the pool stays usable after a propagated failure *)
  Dpool.with_domains 2 (fun () ->
      let partials = Dpool.map_chunks (Array.fold_left ( + ) 0) xs in
      check_i "pool reusable after exception" (Array.fold_left ( + ) 0 xs)
        (Array.fold_left ( + ) 0 partials))

let test_dpool_env_parsing () =
  let original = Sys.getenv_opt "DPOOL_DOMAINS" in
  let set v = Unix.putenv "DPOOL_DOMAINS" v in
  Fun.protect
    ~finally:(fun () -> set (Option.value ~default:"" original))
    (fun () ->
      (* a valid setting wins over the runtime recommendation *)
      set "5";
      check_i "explicit count" 5 (Dpool.count ());
      set " 3 ";
      check_i "whitespace trimmed" 3 (Dpool.count ());
      (* the recommendation is whatever an unparseable setting falls
         back to; all rejected forms must agree with it and be >= 1 *)
      set "";
      let fallback = Dpool.count () in
      check_b "fallback is positive" true (fallback >= 1);
      List.iter
        (fun bad ->
          set bad;
          check_i (Printf.sprintf "rejected %S" bad) fallback (Dpool.count ()))
        [ "0"; "-2"; "garbage"; "2.5" ];
      (* with_domains overrides any environment setting *)
      set "7";
      Dpool.with_domains 2 (fun () ->
          check_i "with_domains beats env" 2 (Dpool.count ()));
      check_i "env restored after with_domains" 7 (Dpool.count ()))

let () =
  Alcotest.run "daric-scale"
    [ ( "differential",
        [ Alcotest.test_case "event streams (seq/par/reference)" `Quick
            test_event_stream_differential;
          Alcotest.test_case "indexed reads vs scan oracle" `Quick
            test_indexed_reads_vs_scan;
          Alcotest.test_case "watchtower cursor vs scan monitor" `Quick
            test_watchtower_differential ] );
      ( "ledger-internals",
        [ Alcotest.test_case "accepted view caching" `Quick
            test_accepted_view_cached;
          Alcotest.test_case "checkpoint/rollback" `Quick
            test_checkpoint_rollback;
          Alcotest.test_case "pending bucket semantics" `Quick
            test_pending_buckets ] );
      ( "util",
        [ Alcotest.test_case "vec" `Quick test_vec;
          Alcotest.test_case "dpool" `Quick test_dpool;
          Alcotest.test_case "dpool exceptions" `Quick test_dpool_exceptions;
          Alcotest.test_case "dpool env parsing" `Quick test_dpool_env_parsing ] ) ]
