(* Analysis-layer tests: the Section 6.2 thresholds, Table 1 storage
   measurements, locktime/lifetime arithmetic and flowchart output. *)

module I = Daric_analysis.Incentives
module Tables = Daric_analysis.Tables
module Locktime = Daric_core.Locktime
module Flowchart = Daric_core.Flowchart

let check_b = Alcotest.(check bool)
let check_f = Alcotest.(check (float 1e-9))

let test_thresholds_match_paper () =
  (* eltoo with average fee/capacity: p > ~0.999 *)
  check_f "eltoo avg" 0.998625
    (I.eltoo_threshold ~fee:0.000055 ~capacity:0.04);
  (* eltoo with minimum fee: p > ~0.9999 *)
  check_b "eltoo min fee ~0.99995" true
    (abs_float (I.eltoo_threshold ~fee:I.Constants.min_fee_btc ~capacity:0.04 -. 0.999948) < 1e-5);
  (* Daric: p > 0.99 regardless of capacity *)
  check_f "daric" 0.99 (I.daric_threshold ~reserve:0.01);
  check_f "daric at 10x capacity" 0.99 (I.daric_threshold ~reserve:0.01)

let test_threshold_capacity_dependence () =
  let sweep = I.capacity_sweep () in
  let eltoos = List.map (fun (_, e, _) -> e) sweep in
  let darics = List.map (fun (_, _, d) -> d) sweep in
  check_b "eltoo threshold strictly increases with capacity" true
    (List.for_all2 (fun a b -> a < b) (List.tl (List.rev eltoos)) (List.rev eltoos |> List.tl |> List.map (fun _ -> 1.0)) |> fun _ ->
     let rec incr = function a :: b :: tl -> a < b && incr (b :: tl) | _ -> true in
     incr eltoos);
  check_b "daric threshold constant" true
    (List.for_all (fun d -> d = 0.99) darics)

let test_coverage_variant () =
  (* full coverage means no attack regardless of p *)
  let t = I.daric_threshold_with_coverage ~reserve:0.01 ~coverage:0.5 in
  check_f "daric with 50% coverage" 0.98 t;
  check_b "eltoo with coverage still capacity-dependent" true
    (I.eltoo_threshold_with_coverage ~fee:0.0000021 ~capacity:0.4 ~coverage:0.5
    > I.eltoo_threshold_with_coverage ~fee:0.0000021 ~capacity:0.04 ~coverage:0.5)

let test_expected_profit_sign_flip () =
  let cap = 0.04 and fee = I.Constants.min_fee_btc in
  let thr = I.eltoo_threshold ~fee ~capacity:cap in
  check_b "profitable below threshold" true
    (I.eltoo_expected_profit ~fee ~capacity:cap ~p:(thr -. 0.0001) > 0.);
  check_b "unprofitable above threshold" true
    (I.eltoo_expected_profit ~fee ~capacity:cap ~p:(thr +. 0.0001) < 0.);
  let dthr = I.daric_threshold ~reserve:0.01 in
  check_b "daric profitable below" true
    (I.daric_expected_profit ~reserve:0.01 ~capacity:cap ~p:(dthr -. 0.001) > 0.);
  check_b "daric unprofitable above" true
    (I.daric_expected_profit ~reserve:0.01 ~capacity:cap ~p:(dthr +. 0.001) < 0.)

let test_monte_carlo_agrees () =
  let rng = Daric_util.Rng.create ~seed:5 in
  let cap = 0.04 in
  let emp = I.simulate_daric ~rng ~trials:100_000 ~p:0.5 ~reserve:0.01 ~capacity:cap in
  let closed = I.daric_expected_profit ~reserve:0.01 ~capacity:cap ~p:0.5 in
  check_b "MC within 5% of closed form" true
    (abs_float (emp -. closed) < 0.05 *. abs_float closed)

let test_min_punishment_usd () =
  let v = I.daric_min_punishment_usd () in
  check_b "around 20 USD" true (v > 15. && v < 25.)

(* ---------------- Table 1 measurements ---------------- *)

let cell_exn what = function
  | Ok v -> v
  | Error reason -> Alcotest.failf "%s: %s" what reason

let test_storage_scaling () =
  let p10 = Tables.storage_point ~n:10 in
  let p50 = Tables.storage_point ~n:50 in
  let party p s = cell_exn (s ^ " party") (Tables.party_cell p s) in
  let wt p s = cell_exn (s ^ " watchtower") (Tables.watchtower_cell p s) in
  Alcotest.(check int) "daric party storage constant" (party p10 "Daric")
    (party p50 "Daric");
  Alcotest.(check int) "daric watchtower storage constant" (wt p10 "Daric")
    (wt p50 "Daric");
  Alcotest.(check int) "eltoo party storage constant" (party p10 "eltoo")
    (party p50 "eltoo");
  check_b "lightning party storage grows" true
    (party p50 "Lightning" > party p10 "Lightning");
  check_b "lightning watchtower grows" true
    (wt p50 "Lightning" > wt p10 "Lightning");
  check_b "generalized party storage grows" true
    (party p50 "Generalized" > party p10 "Generalized")

let test_measured_ops_match_table3 () =
  let rows = List.map (cell_exn "measure_ops") (Tables.measure_ops ()) in
  let find n = List.find (fun r -> r.Tables.scheme = n) rows in
  let expect name (s, v, e) =
    let r = find name in
    Alcotest.(check (triple int int int))
      (name ^ " ops") (s, v, e)
      (r.Tables.sign, r.Tables.verify, r.Tables.exp)
  in
  expect "Daric" (4, 3, 0);
  expect "eltoo" (2, 2, 1);
  expect "Lightning" (2, 1, 2);
  expect "Generalized" (3, 2, 1)

(* ---------------- locktime / lifetime ---------------- *)

let test_locktime_encoding () =
  Alcotest.(check int) "timestamp encoding" 500_000_123
    (Locktime.of_state ~s0:500_000_000 123);
  Alcotest.(check int) "roundtrip" 123
    (Locktime.state_of ~s0:500_000_000 (Locktime.of_state ~s0:500_000_000 123));
  check_b "height overflow detected" true
    (try
       ignore (Locktime.of_state ~s0:499_999_999 2);
       false
     with Invalid_argument _ -> true);
  check_b "mode classification" true
    (Locktime.mode_of 0 = Locktime.Block_height
    && Locktime.mode_of 500_000_000 = Locktime.Timestamp)

let test_lifetime_capacities () =
  Alcotest.(check int) "~700k in height mode" 700_000
    (Locktime.height_mode_capacity ~current_height:700_000);
  check_b "~1.15e9 in timestamp mode" true
    (Locktime.timestamp_mode_capacity ~current_time:1_650_000_000
    = 1_150_000_000);
  check_b "unlimited at 1 update/s" true
    (Locktime.unlimited_lifetime ~seconds_per_update:1.0);
  check_b "limited above 1 update/s" false
    (Locktime.unlimited_lifetime ~seconds_per_update:0.5)

let test_remaining_updates () =
  check_b "timestamp mode tracks clock" true
    (Locktime.remaining_updates ~s0:500_000_000 ~sn:0 ~height:0
       ~time:600_000_000
    = 100_000_000);
  check_b "height mode tracks height" true
    (Locktime.remaining_updates ~s0:0 ~sn:10 ~height:700 ~time:600_000_000 = 690)

(* ---------------- flowcharts ---------------- *)

let contains ~(sub : string) (s : string) : bool =
  let n = String.length sub and m = String.length s in
  let rec go i = i + n <= m && (String.sub s i n = sub || go (i + 1)) in
  n = 0 || go 0

let test_flowchart_rendering () =
  let dot = Flowchart.to_dot (Flowchart.daric_state ()) in
  check_b "dot marks published nodes" true (contains ~sub:"peripheries=2" dot);
  check_b "dot marks floating edges" true (contains ~sub:"style=dashed" dot);
  let ascii = Flowchart.to_ascii (Flowchart.sample ()) in
  check_b "ascii marks floating edges" true (contains ~sub:"~~>" ascii)

let () =
  Alcotest.run "daric-analysis"
    [ ( "incentives",
        [ Alcotest.test_case "paper thresholds" `Quick test_thresholds_match_paper;
          Alcotest.test_case "capacity dependence" `Quick
            test_threshold_capacity_dependence;
          Alcotest.test_case "watchtower coverage" `Quick test_coverage_variant;
          Alcotest.test_case "profit sign flip" `Quick
            test_expected_profit_sign_flip;
          Alcotest.test_case "monte carlo" `Quick test_monte_carlo_agrees;
          Alcotest.test_case "min punishment usd" `Quick test_min_punishment_usd ] );
      ( "table1",
        [ Alcotest.test_case "storage scaling" `Quick test_storage_scaling;
          Alcotest.test_case "measured ops" `Quick test_measured_ops_match_table3 ] );
      ( "lifetime",
        [ Alcotest.test_case "locktime encoding" `Quick test_locktime_encoding;
          Alcotest.test_case "capacities" `Quick test_lifetime_capacities;
          Alcotest.test_case "remaining updates" `Quick test_remaining_updates ] );
      ( "flowchart",
        [ Alcotest.test_case "rendering" `Quick test_flowchart_rendering ] ) ]
