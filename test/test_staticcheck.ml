(* Static analyzer tests: abstract-interpreter unit checks on the
   protocol scripts, the seeded-mutation matrix over the Daric closure
   graph, the registry-wide sweep, and the differential fuzz tying the
   analyzer's verdicts to concrete interpreter executions. *)

module Script = Daric_script.Script
module Interp = Daric_script.Interp
module Abstract = Daric_staticcheck.Abstract
module Witness = Daric_staticcheck.Witness
module Diag = Daric_staticcheck.Diag
module Daricmodel = Daric_staticcheck.Daricmodel
module Sweep = Daric_staticcheck.Sweep
module Keys = Daric_core.Keys
module Txs = Daric_core.Txs

let check_b = Alcotest.(check bool)
let check_i = Alcotest.(check int)

let keys () =
  let rng = Daric_util.Rng.create ~seed:99 in
  (Keys.generate rng, Keys.generate rng)

let daric_commit_script ?(s0 = 600_000_000) ?(i = 2) ?(rel_lock = 3) () =
  let ka, kb = keys () in
  let pa = Keys.pub ka and pb = Keys.pub kb in
  Txs.commit_script ~abs_lock:(s0 + i) ~rel_lock ~rev_pk1:pa.Keys.rv_pk
    ~rev_pk2:pb.Keys.rv_pk ~spl_pk1:pa.Keys.sp_pk ~spl_pk2:pb.Keys.sp_pk

(* ---- abstract interpreter on the protocol scripts ---- *)

let find_path (a : Abstract.t) taken =
  List.find (fun (p : Abstract.path) -> p.Abstract.taken = taken)
    a.Abstract.paths

let test_daric_commit_paths () =
  let s0 = 600_000_000 and i = 2 and rel_lock = 3 in
  let a = Abstract.analyze (daric_commit_script ~s0 ~i ~rel_lock ()) in
  check_i "two paths" 2 (List.length a.Abstract.paths);
  let rev = find_path a "T" and split = find_path a "F" in
  check_b "revocation path satisfiable" true (rev.Abstract.verdict = `Sat);
  check_b "split path satisfiable" true (split.Abstract.verdict = `Sat);
  check_b "both demand the state CLTV" true
    (rev.Abstract.cltv = [ (true, s0 + i) ]
    && split.Abstract.cltv = [ (true, s0 + i) ]);
  check_i "revocation immediate" 0 rev.Abstract.csv;
  check_i "split delayed" rel_lock split.Abstract.csv;
  (* selector + two signatures + multisig dummy *)
  check_i "revocation arity" 4 rev.Abstract.arity;
  check_i "split arity" 4 split.Abstract.arity;
  check_i "four keys checked" 4 (List.length a.Abstract.used_keys);
  check_i "no findings" 0 (List.length a.Abstract.diags)

let test_lightning_to_local () =
  (* [IF <rev> ELSE <T> CSV DROP <delayed> ENDIF CHECKSIG] *)
  let s =
    [ Script.If; Push "REV"; Else; Num 144; Csv; Drop; Push "DEL"; Endif;
      Checksig ]
  in
  let a = Abstract.analyze s in
  let pen = find_path a "T" and sweep = find_path a "F" in
  check_b "penalty path sat" true (pen.Abstract.verdict = `Sat);
  check_b "sweep path sat" true (sweep.Abstract.verdict = `Sat);
  check_i "penalty immediate" 0 pen.Abstract.csv;
  check_i "sweep delayed" 144 sweep.Abstract.csv;
  check_b "per-path key attribution" true
    (pen.Abstract.keys = [ "REV" ] && sweep.Abstract.keys = [ "DEL" ])

let test_structural_findings () =
  let has rule (a : Abstract.t) =
    List.exists (fun (r, _, _, _) -> r = rule) a.Abstract.diags
  in
  let unbalanced = Abstract.analyze [ Script.If; Small 1 ] in
  check_b "unbalanced flagged" true
    (has Diag.Unbalanced_conditional unbalanced);
  check_b "unbalanced unsatisfiable" true
    (not (Abstract.satisfiable unbalanced));
  let dead = Abstract.analyze [ Script.Small 1; If; Small 1; Else; Small 2; Endif ] in
  check_b "dead branch flagged" true (has Diag.Dead_branch dead);
  check_b "dead branch still satisfiable" true (Abstract.satisfiable dead);
  let mixed = Abstract.analyze [ Script.Num 100; Cltv; Drop; Num 600_000_000; Cltv ] in
  check_b "mixed CLTV classes flagged" true (has Diag.Mixed_cltv_classes mixed);
  check_b "mixed CLTV unsatisfiable" true (not (Abstract.satisfiable mixed));
  let carrier = Abstract.analyze [ Script.Return; Push "data" ] in
  check_b "data carrier is info only" true
    (carrier.Abstract.data_carrier && has Diag.Data_carrier carrier);
  let dead_verify = Abstract.analyze [ Script.Small 0; Verify; Small 1 ] in
  check_b "guaranteed failure unsatisfiable" true
    (not (Abstract.satisfiable dead_verify));
  (* An Else toggle: segments alternate, so IF runs segments 0 and 2. *)
  let toggles =
    [ Script.If; Push "a"; Else; Push "b"; Else; Push "c"; Endif; Push "c";
      Equalverify; Push "a"; Equalverify; Small 1 ]
  in
  let a = Abstract.analyze toggles in
  check_b "multi-Else then-arm satisfiable" true
    ((find_path a "T").Abstract.verdict = `Sat)

(* ---- synthesized witnesses execute concretely ---- *)

let test_synthesis_executes () =
  let script = daric_commit_script () in
  let a = Abstract.analyze script in
  List.iter
    (fun (p : Abstract.path) ->
      check_b ("path " ^ p.Abstract.taken ^ " sat") true
        (p.Abstract.verdict = `Sat);
      match Witness.synthesize Witness.sig_tag_oracle p with
      | None -> Alcotest.fail "synthesis failed on a Sat path"
      | Some stack ->
          let ctx = Witness.context_for ~check_sig:Witness.sig_tag_checker p in
          check_b
            ("synthesized witness runs path " ^ p.Abstract.taken)
            true
            (Interp.run ctx script stack = Ok ()))
    a.Abstract.paths

(* The same, against the real signature checker: complete a Daric
   split/revocation spend of a published commit and show the analyzer's
   template reproduces the interpreter-accepted witness shape. *)
let test_synthesis_real_crypto () =
  let m = Daricmodel.build () in
  let script =
    (* Bob's state-0 commit script *)
    List.find_map
      (fun (e : Daricmodel.entry) ->
        match e.Daricmodel.kind with
        | Daricmodel.Commit (Keys.Bob, 0) -> e.Daricmodel.script
        | _ -> None)
      m.Daricmodel.entries
    |> Option.get
  in
  let rv =
    List.find
      (fun (e : Daricmodel.entry) -> e.Daricmodel.kind = Daricmodel.Revoke 0)
      m.Daricmodel.entries
  in
  let a = Abstract.analyze script in
  let p = find_path a "T" in
  let tx = rv.Daricmodel.tx in
  let sign pk =
    let sk_of (k : Keys.keypair) =
      if Keys.enc k.Keys.pk = pk then Some k.Keys.sk else None
    in
    let candidates =
      [ m.Daricmodel.keys_a.Keys.rv'; m.Daricmodel.keys_b.Keys.rv';
        m.Daricmodel.keys_a.Keys.sp; m.Daricmodel.keys_b.Keys.sp ]
    in
    Option.map
      (fun sk -> Daric_tx.Sighash.sign sk Anyprevout tx ~input_index:0)
      (List.find_map sk_of candidates)
  in
  let oracle = { Witness.null_oracle with Witness.sign } in
  match Witness.synthesize oracle p with
  | None -> Alcotest.fail "synthesis failed with the real signer"
  | Some stack ->
      let ctx =
        Witness.context_for
          ~check_sig:(fun ~pk_bytes ~sig_bytes ->
            Daric_tx.Sighash.check tx ~input_index:0 ~pk_bytes ~sig_bytes)
          p
      in
      check_b "real-crypto witness accepted" true
        (Interp.run ctx script stack = Ok ())

(* ---- seeded mutations of the Daric closure graph ---- *)

let test_base_model_clean () =
  let diags = Daricmodel.lint (Daricmodel.build ()) in
  if diags <> [] then
    List.iter (fun d -> Printf.printf "unexpected: %s\n" (Diag.to_string d)) diags;
  check_i "unmutated closure graph is clean" 0 (List.length diags)

let test_mutations_caught () =
  List.iter
    (fun (m, expected) ->
      let diags = Daricmodel.lint (Daricmodel.build ~mutate:m ()) in
      let hit = List.exists (fun d -> d.Diag.rule = expected) diags in
      if not hit then
        List.iter
          (fun d -> Printf.printf "got instead: %s\n" (Diag.to_string d))
          diags;
      check_b
        (Printf.sprintf "%s flagged as %s" (Daricmodel.mutation_name m)
           (Diag.rule_name expected))
        true hit)
    Daricmodel.all_mutations

(* ---- registry-wide sweep ---- *)

let test_sweep_no_errors () =
  let reports = Sweep.run ~updates:2 () in
  check_i "nine reports (eight schemes + model)" 9 (List.length reports);
  List.iter
    (fun (r : Sweep.report) ->
      let errs =
        List.filter (fun d -> d.Diag.severity = Diag.Error) r.Sweep.diags
      in
      List.iter
        (fun d -> Printf.printf "sweep error: %s\n" (Diag.to_string d))
        errs;
      check_i (r.Sweep.scheme ^ " has no errors") 0 (List.length errs))
    reports

(* ---- differential fuzz: analyzer verdicts vs concrete execution ---- *)

let fuzz_keys = [ "K1"; "K2"; "K3" ]
let fuzz_preimages = [ "P1"; "P2" ]

let fuzz_oracle =
  { Witness.sign = (fun pk -> Some ("sig:" ^ pk));
    preimage =
      (fun f d ->
        List.find_opt (fun p -> Abstract.apply_hash f p = d) fuzz_preimages) }

let gen_fragment : Script.op list QCheck.Gen.t =
  let open QCheck.Gen in
  let key = oneofl fuzz_keys in
  let pre = oneofl fuzz_preimages in
  let leaf =
    oneof
      [ map (fun k -> [ Script.Push k; Script.Checksig ]) key;
        map (fun k -> [ Script.Push k; Script.Checksigverify; Script.Small 1 ]) key;
        map2
          (fun k1 k2 ->
            [ Script.Small 2; Script.Push k1; Script.Push k2; Script.Small 2;
              Script.Checkmultisig ])
          key key;
        map
          (fun p ->
            [ Script.Sha256;
              Script.Push (Abstract.apply_hash Abstract.Sha p);
              Script.Equal ])
          pre;
        map
          (fun p ->
            [ Script.Hash160;
              Script.Push (Abstract.apply_hash Abstract.H160 p);
              Script.Equalverify; Script.Small 1 ])
          pre;
        map
          (fun t -> [ Script.Num t; Script.Cltv; Script.Drop ])
          (oneofl [ 5; 100; 600_000_000; 700_000_000 ]);
        map (fun t -> [ Script.Num t; Script.Csv; Script.Drop ]) (1 -- 10);
        map (fun v -> [ Script.Small v ]) (0 -- 2);
        map (fun s -> [ Script.Push s ]) (string_size (0 -- 4));
        return [ Script.Dup; Script.Drop ];
        return [ Script.Verify ];
        return [ Script.Return ] ]
  in
  let body = map List.concat (list_size (1 -- 3) leaf) in
  let cond =
    map3
      (fun neg thn els ->
        [ (if neg then Script.Notif else Script.If) ]
        @ thn @ [ Script.Else ] @ els @ [ Script.Endif ])
      bool body body
  in
  oneof [ leaf; cond ]

let gen_script : Script.t QCheck.Gen.t =
  QCheck.Gen.(map List.concat (list_size (1 -- 4) gen_fragment))

let fuzz_ctxs =
  [ Witness.context_for ~check_sig:Witness.sig_tag_checker
      { Abstract.taken = "-"; verdict = `Sat; arity = 0; slots = [];
        cltv = []; csv = 0; keys = []; notes = [] };
    { Interp.check_sig = Witness.sig_tag_checker; tx_locktime = 499_999_999;
      input_age = 1000 };
    { Interp.check_sig = Witness.sig_tag_checker; tx_locktime = 1_000_000_000;
      input_age = 1000 } ]

(* Direction 1: every Sat path must execute under its synthesized
   witness. *)
let prop_sat_paths_execute =
  QCheck.Test.make ~name:"Sat paths run Ok under synthesized witnesses"
    ~count:500
    (QCheck.make ~print:(fun s -> Fmt.str "%a" Script.pp s) gen_script)
    (fun script ->
      let a = Abstract.analyze script in
      List.for_all
        (fun (p : Abstract.path) ->
          match p.Abstract.verdict with
          | `Sat -> (
              match Witness.synthesize fuzz_oracle p with
              | None -> true (* oracle gap (e.g. unknown digest): skip *)
              | Some stack ->
                  let ctx =
                    Witness.context_for ~check_sig:Witness.sig_tag_checker p
                  in
                  Interp.run ctx script stack = Ok ())
          | _ -> true)
        a.Abstract.paths)

(* Direction 2: a script with no satisfiable path must reject every
   witness we can throw at it, under every context. *)
let prop_unsat_scripts_reject =
  let value_pool =
    [ ""; "\001"; "\000"; "x"; "P1"; "P2" ]
    @ List.map (fun k -> "sig:" ^ k) fuzz_keys
  in
  QCheck.Test.make ~name:"unsatisfiable scripts reject all witnesses"
    ~count:500
    (QCheck.pair
       (QCheck.make ~print:(fun s -> Fmt.str "%a" Script.pp s) gen_script)
       (QCheck.make QCheck.Gen.(list_size (0 -- 6) (oneofl value_pool))))
    (fun (script, stack) ->
      let a = Abstract.analyze script in
      if Abstract.satisfiable a then true
      else
        List.for_all
          (fun ctx -> Interp.run ctx script stack <> Ok ())
          fuzz_ctxs)

let () =
  Alcotest.run "daric-staticcheck"
    [ ( "abstract",
        [ Alcotest.test_case "daric commit paths" `Quick
            test_daric_commit_paths;
          Alcotest.test_case "lightning to_local" `Quick
            test_lightning_to_local;
          Alcotest.test_case "structural findings" `Quick
            test_structural_findings ] );
      ( "witness",
        [ Alcotest.test_case "synthesis executes" `Quick
            test_synthesis_executes;
          Alcotest.test_case "synthesis with real crypto" `Quick
            test_synthesis_real_crypto ] );
      ( "mutations",
        [ Alcotest.test_case "base model clean" `Quick test_base_model_clean;
          Alcotest.test_case "all mutations caught" `Quick
            test_mutations_caught ] );
      ( "sweep",
        [ Alcotest.test_case "registry sweep has no errors" `Slow
            test_sweep_no_errors ] );
      ( "differential",
        [ QCheck_alcotest.to_alcotest prop_sat_paths_execute;
          QCheck_alcotest.to_alcotest prop_unsat_scripts_reject ] ) ]
