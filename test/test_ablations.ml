(* Ablation studies: remove one Daric design ingredient at a time and
   demonstrate the concrete attack that becomes possible — justifying
   the design decisions called out in DESIGN.md.

   A. Two revocation key pairs (rv / rv'). If both commit variants used
      the same revocation keys, a party could publish her OWN revoked
      commit and immediately "punish" it with the revocation
      transaction SHE holds, stealing the whole capacity before the
      counter-party's revocation (a pure race she can win by network
      advantage).

   B. State ordering (CLTV(S0+i) + nLockTime). Without it, a revoked
      floating split transaction could spend the LATEST commit,
      rewinding the channel to an old balance distribution. *)

module Tx = Daric_tx.Tx
module Sighash = Daric_tx.Sighash
module Script = Daric_script.Script
module Ledger = Daric_chain.Ledger
module Keys = Daric_core.Keys
module Txs = Daric_core.Txs
module Rng = Daric_util.Rng

let check_b = Alcotest.(check bool)

let settle l n = for _ = 1 to n do ignore (Ledger.tick l) done

type env = {
  l : Ledger.t;
  keys_a : Keys.t;
  keys_b : Keys.t;
  pub_a : Keys.pub;
  pub_b : Keys.pub;
  funding : Tx.outpoint;
  cash : int;
}

let mk_env () =
  let l = Ledger.create ~delta:1 () in
  let rng = Rng.create ~seed:66 in
  let keys_a = Keys.generate rng and keys_b = Keys.generate rng in
  let pub_a = Keys.pub keys_a and pub_b = Keys.pub keys_b in
  let cash = 100_000 in
  let funding =
    Ledger.mint l ~value:cash
      ~spk:
        (Tx.P2wsh
           (Script.hash
              (Txs.funding_script ~pk_a:pub_a.Keys.main_pk ~pk_b:pub_b.Keys.main_pk)))
  in
  { l; keys_a; keys_b; pub_a; pub_b; funding; cash }

(* Sign and complete a commit body with both main keys. *)
let complete_commit (e : env) (body : Tx.t) : Tx.t =
  let msg = Txs.commit_message body in
  Txs.complete_commit body
    ~sig_a:(Sighash.sign_message e.keys_a.Keys.main.sk All msg)
    ~sig_b:(Sighash.sign_message e.keys_b.Keys.main.sk All msg)
    ~pk_a:e.pub_a.Keys.main_pk ~pk_b:e.pub_b.Keys.main_pk

(* ------------------------------------------------------------------ *)
(* Ablation A: a single revocation key pair enables self-punishment.   *)

(* Commit script variant where BOTH parties' commits carry the SAME
   revocation keys (rv_a, rv_b). *)
let single_pair_commit (e : env) ~(i : int) : Tx.t * Script.t =
  let script =
    Txs.commit_script ~abs_lock:(500_000_000 + i) ~rel_lock:3
      ~rev_pk1:e.pub_a.Keys.rv_pk ~rev_pk2:e.pub_b.Keys.rv_pk
      ~spl_pk1:e.pub_a.Keys.sp_pk ~spl_pk2:e.pub_b.Keys.sp_pk
  in
  ( Tx.make ~inputs:[ Tx.input_of_outpoint ~sequence:i e.funding ] ~outputs:[ { Tx.value = e.cash; spk = Tx.P2wsh (Script.hash script) } ] (),
    script )

let test_single_rev_pair_self_punish () =
  let e = mk_env () in
  (* state 0 commit of A under the single-pair variant; revoked when the
     channel moved to state 1, so A's revocation transaction (paying A!)
     exists with both rv-signatures *)
  let commit_a0, script = single_pair_commit e ~i:0 in
  let commit_a0 = complete_commit e commit_a0 in
  let rv_a, _ =
    Txs.gen_revoke ~pk_a:e.pub_a.Keys.main_pk ~pk_b:e.pub_b.Keys.main_pk
      ~cash:e.cash ~s0:500_000_000 ~revoked:0
  in
  let msg = Txs.revoke_message rv_a in
  (* under the ablation, the revocation branch of EVERY commit uses
     (rv_a, rv_b) — and A holds B's rv-signature from the revocation
     handshake *)
  let sig_a = Sighash.sign_message e.keys_a.Keys.rv.sk Anyprevout msg in
  let sig_b = Sighash.sign_message e.keys_b.Keys.rv.sk Anyprevout msg in
  (* the dishonest A publishes her own revoked commit... *)
  Ledger.post e.l commit_a0 ~delay:0;
  settle e.l 1;
  (* ...and instantly "punishes" herself, taking the full capacity *)
  let theft =
    Txs.complete_revocation rv_a ~commit_outpoint:(Tx.outpoint_of commit_a0 0)
      ~commit_script:script ~sig1:sig_a ~sig2:sig_b
  in
  check_b "ABLATION: self-punishment steals the channel" true
    (Ledger.validate e.l theft = Ok ());
  check_b "thief gets everything" true (Tx.total_output_value theft = e.cash)

let test_daric_two_pairs_block_self_punish () =
  let e = mk_env () in
  (* real Daric: A's commit carries (rv_a, rv_b); A's OWN revocation
     transaction is signed under (rv'_a, rv'_b) and cannot spend it *)
  let commit_a0_body, _ =
    Txs.gen_commit ~funding:e.funding ~value:e.cash ~keys_a:e.pub_a
      ~keys_b:e.pub_b ~s0:500_000_000 ~i:0 ~rel_lock:3
  in
  let commit_a0 = complete_commit e commit_a0_body in
  let script =
    Txs.commit_script_of ~role:Keys.Alice ~keys_a:e.pub_a ~keys_b:e.pub_b
      ~s0:500_000_000 ~i:0 ~rel_lock:3
  in
  let rv_a, _ =
    Txs.gen_revoke ~pk_a:e.pub_a.Keys.main_pk ~pk_b:e.pub_b.Keys.main_pk
      ~cash:e.cash ~s0:500_000_000 ~revoked:0
  in
  let msg = Txs.revoke_message rv_a in
  (* A's revocation tx signatures (rv' keys, as in the protocol) *)
  let sig_a = Sighash.sign_message e.keys_a.Keys.rv'.sk Anyprevout msg in
  let sig_b = Sighash.sign_message e.keys_b.Keys.rv'.sk Anyprevout msg in
  Ledger.post e.l commit_a0 ~delay:0;
  settle e.l 1;
  let attempt =
    Txs.complete_revocation rv_a ~commit_outpoint:(Tx.outpoint_of commit_a0 0)
      ~commit_script:script ~sig1:sig_a ~sig2:sig_b
  in
  check_b "Daric: self-punishment rejected" true
    (Ledger.validate e.l attempt <> Ok ())

(* ------------------------------------------------------------------ *)
(* Ablation B: dropping state ordering lets old splits rewind states.  *)

(* Commit output script without the CLTV(S0+i) prefix. *)
let unordered_commit_script (e : env) : Script.t =
  [ Script.If; Small 2; Push (Keys.enc e.pub_a.Keys.rv_pk);
    Push (Keys.enc e.pub_b.Keys.rv_pk); Small 2; Checkmultisig; Else; Num 3;
    Csv; Drop; Small 2; Push (Keys.enc e.pub_a.Keys.sp_pk);
    Push (Keys.enc e.pub_b.Keys.sp_pk); Small 2; Checkmultisig; Endif ]

let test_no_ordering_old_split_rewinds () =
  let e = mk_env () in
  let script = unordered_commit_script e in
  (* the LATEST commit (state 5, say) under the unordered variant *)
  let commit_latest =
    complete_commit e
      (Tx.make
         ~inputs:[ Tx.input_of_outpoint ~sequence:5 e.funding ]
         ~outputs:[ { Tx.value = e.cash; spk = Tx.P2wsh (Script.hash script) } ]
         ())
  in
  (* a REVOKED split from state 0 where A had 90k; without ordering the
     split has no state-bearing nLockTime either *)
  let old_theta =
    Txs.balance_state ~pk_a:e.pub_a.Keys.main_pk ~pk_b:e.pub_b.Keys.main_pk
      ~bal_a:90_000 ~bal_b:10_000
  in
  let old_split = Tx.make ~inputs:[] ~outputs:old_theta () in
  let msg = Txs.split_message old_split in
  let sig_a = Sighash.sign_message e.keys_a.Keys.sp.sk Anyprevout msg in
  let sig_b = Sighash.sign_message e.keys_b.Keys.sp.sk Anyprevout msg in
  Ledger.post e.l commit_latest ~delay:0;
  settle e.l 4 (* past the CSV delay *);
  let rewind =
    Txs.complete_split old_split
      ~commit_outpoint:(Tx.outpoint_of commit_latest 0) ~commit_script:script
      ~sig_a ~sig_b
  in
  check_b "ABLATION: revoked split spends the latest commit" true
    (Ledger.validate e.l rewind = Ok ())

let test_daric_ordering_blocks_old_split () =
  let e = mk_env () in
  (* real Daric: latest commit at state 5, old split at state 0 *)
  let cm_a, _ =
    Txs.gen_commit ~funding:e.funding ~value:e.cash ~keys_a:e.pub_a
      ~keys_b:e.pub_b ~s0:500_000_000 ~i:5 ~rel_lock:3
  in
  let commit_latest = complete_commit e cm_a in
  let script =
    Txs.commit_script_of ~role:Keys.Alice ~keys_a:e.pub_a ~keys_b:e.pub_b
      ~s0:500_000_000 ~i:5 ~rel_lock:3
  in
  let old_theta =
    Txs.balance_state ~pk_a:e.pub_a.Keys.main_pk ~pk_b:e.pub_b.Keys.main_pk
      ~bal_a:90_000 ~bal_b:10_000
  in
  let old_split = Txs.gen_split ~theta:old_theta ~s0:500_000_000 ~i:0 in
  let msg = Txs.split_message old_split in
  let sig_a = Sighash.sign_message e.keys_a.Keys.sp.sk Anyprevout msg in
  let sig_b = Sighash.sign_message e.keys_b.Keys.sp.sk Anyprevout msg in
  Ledger.post e.l commit_latest ~delay:0;
  settle e.l 4;
  let attempt =
    Txs.complete_split old_split
      ~commit_outpoint:(Tx.outpoint_of commit_latest 0) ~commit_script:script
      ~sig_a ~sig_b
  in
  check_b "Daric: old split rejected (CLTV vs nLockTime)" true
    (Ledger.validate e.l attempt <> Ok ());
  (* while the CURRENT split passes *)
  let new_theta =
    Txs.balance_state ~pk_a:e.pub_a.Keys.main_pk ~pk_b:e.pub_b.Keys.main_pk
      ~bal_a:10_000 ~bal_b:90_000
  in
  let new_split = Txs.gen_split ~theta:new_theta ~s0:500_000_000 ~i:5 in
  let msg = Txs.split_message new_split in
  let sig_a = Sighash.sign_message e.keys_a.Keys.sp.sk Anyprevout msg in
  let sig_b = Sighash.sign_message e.keys_b.Keys.sp.sk Anyprevout msg in
  let ok =
    Txs.complete_split new_split
      ~commit_outpoint:(Tx.outpoint_of commit_latest 0) ~commit_script:script
      ~sig_a ~sig_b
  in
  check_b "current split accepted" true (Ledger.validate e.l ok = Ok ())

(* Revocation transactions are similarly ordered: the revocation for
   state n-1 cannot touch the state-n commit. *)
let test_ordering_blocks_old_revocation () =
  let e = mk_env () in
  let cm_a, _ =
    Txs.gen_commit ~funding:e.funding ~value:e.cash ~keys_a:e.pub_a
      ~keys_b:e.pub_b ~s0:500_000_000 ~i:5 ~rel_lock:3
  in
  let commit_latest = complete_commit e cm_a in
  let script =
    Txs.commit_script_of ~role:Keys.Alice ~keys_a:e.pub_a ~keys_b:e.pub_b
      ~s0:500_000_000 ~i:5 ~rel_lock:3
  in
  let _, rv_b =
    Txs.gen_revoke ~pk_a:e.pub_a.Keys.main_pk ~pk_b:e.pub_b.Keys.main_pk
      ~cash:e.cash ~s0:500_000_000 ~revoked:4
  in
  let msg = Txs.revoke_message rv_b in
  let sig_a = Sighash.sign_message e.keys_a.Keys.rv.sk Anyprevout msg in
  let sig_b = Sighash.sign_message e.keys_b.Keys.rv.sk Anyprevout msg in
  Ledger.post e.l commit_latest ~delay:0;
  settle e.l 1;
  let attempt =
    Txs.complete_revocation rv_b ~commit_outpoint:(Tx.outpoint_of commit_latest 0)
      ~commit_script:script ~sig1:sig_a ~sig2:sig_b
  in
  check_b "revocation for n-1 cannot spend commit n" true
    (Ledger.validate e.l attempt <> Ok ())

let () =
  Alcotest.run "daric-ablations"
    [ ( "revocation-keys",
        [ Alcotest.test_case "single pair enables self-punish" `Quick
            test_single_rev_pair_self_punish;
          Alcotest.test_case "two pairs block it" `Quick
            test_daric_two_pairs_block_self_punish ] );
      ( "state-ordering",
        [ Alcotest.test_case "no ordering: old split rewinds" `Quick
            test_no_ordering_old_split_rewinds;
          Alcotest.test_case "ordering blocks old split" `Quick
            test_daric_ordering_blocks_old_split;
          Alcotest.test_case "ordering blocks old revocation" `Quick
            test_ordering_blocks_old_revocation ] ) ]
