(* Ledger functionality tests: the five validity checks of L(Δ,Σ),
   adversarial delays, timelock classes, and the economic mempool
   (fees, RBF, block capacity). *)

module Tx = Daric_tx.Tx
module Ledger = Daric_chain.Ledger
module Mempool = Daric_chain.Mempool
module Schnorr = Daric_crypto.Schnorr
module Sighash = Daric_tx.Sighash
module Rng = Daric_util.Rng

let check_b = Alcotest.(check bool)
let check_i = Alcotest.(check int)

let keypair seed =
  let rng = Rng.create ~seed in
  Schnorr.keygen rng

let p2wpkh pk = Tx.P2wpkh (Daric_crypto.Hash.hash160 (Schnorr.encode_public_key pk))

(** Spend a P2WPKH utxo to a new P2WPKH output. *)
let spend_tx ~sk ~pk ~(from : Tx.outpoint) ~value ~to_pk ?(locktime = 0) () =
  let tx =
    Tx.make ~locktime
      ~inputs:[ Tx.input_of_outpoint from ]
      ~outputs:[ { Tx.value; spk = p2wpkh to_pk } ]
      ()
  in
  let sg = Sighash.sign sk All tx ~input_index:0 in
  Tx.with_witnesses tx [ [ Tx.Data sg; Tx.Data (Schnorr.encode_public_key pk) ] ]

let test_mint_and_spend () =
  let l = Ledger.create ~delta:2 () in
  let sk, pk = keypair 1 in
  let _, pk2 = keypair 2 in
  let op = Ledger.mint l ~value:100 ~spk:(p2wpkh pk) in
  check_b "minted utxo exists" true (Ledger.is_unspent l op);
  let tx = spend_tx ~sk ~pk ~from:op ~value:100 ~to_pk:pk2 () in
  Ledger.post l tx ~delay:0;
  ignore (Ledger.tick l);
  check_b "spent" false (Ledger.is_unspent l op);
  check_b "new utxo" true (Ledger.is_unspent l { Tx.txid = Tx.txid tx; vout = 0 });
  check_b "spender recorded" true (Ledger.spender_of l op <> None)

let test_adversarial_delay () =
  let l = Ledger.create ~delta:3 () in
  let sk, pk = keypair 1 in
  let _, pk2 = keypair 2 in
  let op = Ledger.mint l ~value:100 ~spk:(p2wpkh pk) in
  let tx = spend_tx ~sk ~pk ~from:op ~value:100 ~to_pk:pk2 () in
  Ledger.post l tx ~delay:3;
  ignore (Ledger.tick l);
  ignore (Ledger.tick l);
  check_b "not yet accepted" true (Ledger.is_unspent l op);
  ignore (Ledger.tick l);
  check_b "accepted at delta" false (Ledger.is_unspent l op);
  (* delay is clamped to delta *)
  let l2 = Ledger.create ~delta:1 () in
  let op2 = Ledger.mint l2 ~value:100 ~spk:(p2wpkh pk) in
  let tx2 = spend_tx ~sk ~pk ~from:op2 ~value:100 ~to_pk:pk2 () in
  Ledger.post l2 tx2 ~delay:100;
  ignore (Ledger.tick l2);
  check_b "clamped to delta=1" false (Ledger.is_unspent l2 op2)

let test_validity_checks () =
  let l = Ledger.create ~delta:1 () in
  let sk, pk = keypair 1 in
  let sk2, pk2 = keypair 2 in
  let op = Ledger.mint l ~value:100 ~spk:(p2wpkh pk) in
  (* value conservation *)
  let overspend = spend_tx ~sk ~pk ~from:op ~value:101 ~to_pk:pk2 () in
  check_b "overspend rejected" true
    (Ledger.validate l overspend = Error Ledger.Value_overspent);
  (* missing input *)
  let ghost = { Tx.txid = String.make 32 'x'; vout = 0 } in
  let missing = spend_tx ~sk ~pk ~from:ghost ~value:1 ~to_pk:pk2 () in
  (match Ledger.validate l missing with
  | Error (Ledger.Missing_input _) -> ()
  | _ -> Alcotest.fail "expected missing input");
  (* wrong key *)
  let stolen = spend_tx ~sk:sk2 ~pk:pk2 ~from:op ~value:100 ~to_pk:pk2 () in
  (match Ledger.validate l stolen with
  | Error (Ledger.Invalid_witness _) -> ()
  | _ -> Alcotest.fail "expected invalid witness");
  (* zero-value output *)
  let dust = spend_tx ~sk ~pk ~from:op ~value:0 ~to_pk:pk2 () in
  check_b "zero output rejected" true (Ledger.validate l dust = Error Ledger.Bad_output)

(* Batched validation must accept exactly what [validate] accepts, and
   on rejection isolate the offending witness index via the fallback. *)
let test_batched_validation () =
  let l = Ledger.create ~delta:1 () in
  let sk, pk = keypair 1 in
  let sk2, pk2 = keypair 2 in
  let ops = List.init 3 (fun _ -> Ledger.mint l ~value:100 ~spk:(p2wpkh pk)) in
  let mk_tx ~signers =
    let tx =
      Tx.make ~inputs:(List.map Tx.input_of_outpoint ops) ~outputs:[ { Tx.value = 300; spk = p2wpkh pk2 } ] ()
    in
    let witnesses =
      List.mapi
        (fun i (sk_i, pk_i) ->
          let sg = Sighash.sign sk_i All tx ~input_index:i in
          [ Tx.Data sg; Tx.Data (Schnorr.encode_public_key pk_i) ])
        signers
    in
    Tx.with_witnesses tx witnesses
  in
  let good = mk_tx ~signers:[ (sk, pk); (sk, pk); (sk, pk) ] in
  check_b "batched accepts valid multi-input tx" true
    (Ledger.validate_batched l good = Ok ());
  check_b "batched agrees with validate" true
    (Ledger.validate_batched l good = Ledger.validate l good);
  (* one bad witness among good ones: rejected, index isolated *)
  let bad = mk_tx ~signers:[ (sk, pk); (sk2, pk2); (sk, pk) ] in
  (match Ledger.validate_batched l bad with
  | Error (Ledger.Invalid_witness (1, _)) -> ()
  | _ -> Alcotest.fail "expected Invalid_witness at index 1");
  check_b "batched rejection agrees with validate" true
    (Ledger.validate_batched l bad = Ledger.validate l bad)

let test_locktime_classes () =
  let l = Ledger.create ~genesis_time:600_000_000 ~delta:1 () in
  let sk, pk = keypair 1 in
  let _, pk2 = keypair 2 in
  let op = Ledger.mint l ~value:100 ~spk:(p2wpkh pk) in
  (* height-class locktime in the future *)
  let future_h = spend_tx ~sk ~pk ~from:op ~value:100 ~to_pk:pk2 ~locktime:50 () in
  check_b "future height rejected" true
    (Ledger.validate l future_h = Error Ledger.Locktime_in_future);
  for _ = 1 to 50 do ignore (Ledger.tick l) done;
  check_b "height reached" true (Ledger.validate l future_h = Ok ());
  (* timestamp-class: genesis 600e6 + 50 rounds > 500e6 threshold *)
  let ts = spend_tx ~sk ~pk ~from:op ~value:100 ~to_pk:pk2 ~locktime:600_000_049 () in
  check_b "timestamp in past ok" true (Ledger.validate l ts = Ok ());
  let ts_future =
    spend_tx ~sk ~pk ~from:op ~value:100 ~to_pk:pk2 ~locktime:600_000_051 ()
  in
  check_b "timestamp in future rejected" true
    (Ledger.validate l ts_future = Error Ledger.Locktime_in_future)

let test_double_spend () =
  let l = Ledger.create ~delta:1 () in
  let sk, pk = keypair 1 in
  let _, pk2 = keypair 2 in
  let _, pk3 = keypair 3 in
  let op = Ledger.mint l ~value:100 ~spk:(p2wpkh pk) in
  let tx1 = spend_tx ~sk ~pk ~from:op ~value:100 ~to_pk:pk2 () in
  let tx2 = spend_tx ~sk ~pk ~from:op ~value:100 ~to_pk:pk3 () in
  Ledger.post l tx1 ~delay:0;
  Ledger.post l tx2 ~delay:0;
  let events = Ledger.tick l in
  let accepted =
    List.filter (function Ledger.Accepted _ -> true | _ -> false) events
  in
  let rejected =
    List.filter (function Ledger.Rejected _ -> true | _ -> false) events
  in
  check_i "exactly one accepted" 1 (List.length accepted);
  check_i "exactly one rejected" 1 (List.length rejected)

(* ---------------- economic mempool ---------------- *)

let mk_mempool ?(config = Mempool.default_config) () =
  let ledger = Ledger.create ~delta:0 () in
  Mempool.create ~config ~ledger ()

let test_fee_and_minrelay () =
  let mp = mk_mempool () in
  let l = Mempool.ledger mp in
  let sk, pk = keypair 1 in
  let _, pk2 = keypair 2 in
  let op = Ledger.mint l ~value:100_000 ~spk:(p2wpkh pk) in
  (* zero fee -> below min relay *)
  let free = spend_tx ~sk ~pk ~from:op ~value:100_000 ~to_pk:pk2 () in
  check_b "free tx rejected" true
    (Mempool.submit mp free = Error Mempool.Feerate_below_minimum);
  (* pay 1 sat/vbyte *)
  let paid = spend_tx ~sk ~pk ~from:op ~value:99_000 ~to_pk:pk2 () in
  check_b "paid tx accepted" true (Mempool.submit mp paid = Ok ());
  let confirmed = Mempool.tick mp in
  check_i "confirmed in next block" 1 (List.length confirmed);
  check_i "fees collected" 1_000 (Mempool.total_fees_collected mp)

let test_rbf_rules () =
  let mp = mk_mempool () in
  let l = Mempool.ledger mp in
  let sk, pk = keypair 1 in
  let _, pk2 = keypair 2 in
  let _, pk3 = keypair 3 in
  let op = Ledger.mint l ~value:1_000_000 ~spk:(p2wpkh pk) in
  let tx_with_fee fee to_pk = spend_tx ~sk ~pk ~from:op ~value:(1_000_000 - fee) ~to_pk () in
  check_b "original accepted" true (Mempool.submit mp (tx_with_fee 100_000 pk2) = Ok ());
  (* conflicting tx with small fee increment: rejected by BIP-125 *)
  check_b "insufficient replacement rejected" true
    (Mempool.submit mp (tx_with_fee 100_001 pk3) = Error Mempool.Rbf_insufficient_fee);
  (* paying more than the old fee plus relay for its own size: accepted *)
  check_b "sufficient replacement accepted" true
    (Mempool.submit mp (tx_with_fee 101_000 pk3) = Ok ());
  check_i "pool holds one" 1 (Mempool.pool_size mp);
  let confirmed = Mempool.tick mp in
  (match confirmed with
  | [ tx ] ->
      check_b "the replacement confirmed" true
        (List.exists
           (fun (o : Tx.output) ->
             o.spk = p2wpkh pk3)
           tx.Tx.outputs)
  | _ -> Alcotest.fail "expected one confirmation")

let test_block_capacity () =
  let config = { Mempool.default_config with block_vbytes = 300 } in
  let mp = mk_mempool ~config () in
  let l = Mempool.ledger mp in
  let sk, pk = keypair 1 in
  let _, pk2 = keypair 2 in
  (* many independent txs, each ~100+ vbytes; only ~2 fit per block *)
  let ops = List.init 6 (fun _ -> Ledger.mint l ~value:50_000 ~spk:(p2wpkh pk)) in
  List.iter
    (fun op ->
      match Mempool.submit mp (spend_tx ~sk ~pk ~from:op ~value:49_000 ~to_pk:pk2 ()) with
      | Ok () -> ()
      | Error e -> Alcotest.fail (Mempool.submit_error_to_string e))
    ops;
  let b1 = List.length (Mempool.tick mp) in
  check_b "capacity limits block" true (b1 < 6 && b1 >= 1);
  let total = ref b1 in
  for _ = 1 to 5 do
    total := !total + List.length (Mempool.tick mp)
  done;
  check_i "all eventually confirm" 6 !total

let test_higher_feerate_first () =
  let mp = mk_mempool ~config:{ Mempool.default_config with block_vbytes = 150 } () in
  let l = Mempool.ledger mp in
  let sk, pk = keypair 1 in
  let _, pk2 = keypair 2 in
  let op_lo = Ledger.mint l ~value:50_000 ~spk:(p2wpkh pk) in
  let op_hi = Ledger.mint l ~value:50_000 ~spk:(p2wpkh pk) in
  let lo = spend_tx ~sk ~pk ~from:op_lo ~value:49_800 ~to_pk:pk2 () in
  let hi = spend_tx ~sk ~pk ~from:op_hi ~value:40_000 ~to_pk:pk2 () in
  check_b "lo in" true (Mempool.submit mp lo = Ok ());
  check_b "hi in" true (Mempool.submit mp hi = Ok ());
  (match Mempool.tick mp with
  | [ tx ] -> check_b "high feerate first" true (Tx.txid tx = Tx.txid hi)
  | _ -> Alcotest.fail "expected exactly one tx in the tight block");
  ignore (Mempool.tick mp)

(* Checkpoint/rollback stress under nested checkpoint discipline,
   interleaved with aggressive log compaction (compact_depth = 2, so
   rolled-back entries include packed ones). A deterministic op script
   (mint + delayed spend + tick per step) lets every rolled-back state
   be compared against a freshly replayed ledger. *)

let test_checkpoint_stress () =
  let sk, pk = keypair 1 in
  let _, pk2 = keypair 2 in
  let step l i =
    let op = Ledger.mint l ~value:(1000 + i) ~spk:(p2wpkh pk) in
    let tx = spend_tx ~sk ~pk ~from:op ~value:(1000 + i) ~to_pk:pk2 () in
    Ledger.post l tx ~delay:(i mod 3);
    ignore (Ledger.tick l);
    op
  in
  (* Divergent branch: different values and delays, discarded later. *)
  let step_divergent l i =
    let op = Ledger.mint l ~value:(9000 + i) ~spk:(p2wpkh pk) in
    let tx = spend_tx ~sk ~pk ~from:op ~value:(9000 + i) ~to_pk:pk2 () in
    Ledger.post l tx ~delay:((i + 1) mod 3);
    ignore (Ledger.tick l);
    op
  in
  let mk () = Ledger.create ~delta:2 ~compact_depth:2 () in
  let fresh upto =
    let l = mk () in
    let ops = List.init upto (step l) in
    (l, ops)
  in
  let state l =
    ( Ledger.height l,
      List.map (fun (r, tx) -> (r, Tx.txid tx)) (Ledger.accepted l),
      List.sort compare
        (Ledger.fold_utxos l
           (fun op u acc ->
             (op.Tx.txid, op.Tx.vout, u.Ledger.output.Tx.value) :: acc)
           []),
      List.map
        (fun (due, txs) -> (due, List.map Tx.txid txs))
        (Ledger.pending_due l),
      Ledger.total_value l )
  in
  let agree label l ops (l', ops') =
    check_b (label ^ ": state equals fresh replay") true (state l = state l');
    check_b (label ^ ": same op stream") true (ops = ops');
    List.iter
      (fun op ->
        let via_index = Ledger.spender_of l op
        and via_scan = Ledger.spender_of_scan l op in
        check_b
          (label ^ ": spender index matches scan")
          true
          (Option.map Tx.txid via_index = Option.map Tx.txid via_scan))
      ops
  in
  let a, b, n = (3, 7, 12) in
  let l = mk () in
  let ops_a = List.init a (step l) in
  let c1 = Ledger.checkpoint l in
  let ops_b = ops_a @ List.init (b - a) (fun i -> step l (a + i)) in
  let c2 = Ledger.checkpoint l in
  let _ops_n = ops_b @ List.init (n - b) (fun i -> step l (b + i)) in
  check_b "compaction packed entries" true (Ledger.compacted_count l > 0);
  (* Roll back past compacted recordings to the inner checkpoint. *)
  Ledger.rollback l c2;
  agree "rollback to c2" l ops_b (fresh b);
  (* Diverge, then re-enter the same checkpoint (DFS backtracking). *)
  let _ = List.init (n - b) (fun i -> step_divergent l (b + i)) in
  Ledger.rollback l c2;
  agree "re-entered c2 after divergent branch" l ops_b (fresh b);
  (* Unwind the stack to the outer checkpoint and replay to the tip:
     the rebuilt chain must equal an uncheckpointed straight run. *)
  Ledger.rollback l c1;
  agree "rollback to c1" l ops_a (fresh a);
  let ops_n' = ops_a @ List.init (n - a) (fun i -> step l (a + i)) in
  agree "replayed to tip after rollback" l ops_n' (fresh n);
  (* Violating the stack discipline — rolling back to a checkpoint
     taken at a round above the ledger's — is refused. *)
  let l2 = mk () in
  let _ = List.init 2 (step l2) in
  let c_lo = Ledger.checkpoint l2 in
  let _ = List.init 2 (fun i -> step l2 (2 + i)) in
  let c_hi = Ledger.checkpoint l2 in
  Ledger.rollback l2 c_lo;
  check_b "rollback above the current round raises" true
    (match Ledger.rollback l2 c_hi with
    | () -> false
    | exception Invalid_argument _ -> true)

let prop_delay_never_negative =
  QCheck.Test.make ~name:"post accepts any delay value" ~count:100
    QCheck.(int_range (-5) 50)
    (fun d ->
      let l = Ledger.create ~delta:3 () in
      let sk, pk = keypair 1 in
      let op = Ledger.mint l ~value:10 ~spk:(p2wpkh pk) in
      let tx = spend_tx ~sk ~pk ~from:op ~value:10 ~to_pk:pk () in
      Ledger.post l tx ~delay:d;
      for _ = 1 to 4 do ignore (Ledger.tick l) done;
      (* whatever the requested delay, the tx lands within delta *)
      not (Ledger.is_unspent l op))

(* Safety under fuzzing: random conflicting submissions and block
   production never confirm a double spend, and ledger value never
   increases. *)
let prop_no_double_spend =
  QCheck.Test.make ~name:"mempool never confirms double spends" ~count:50
    QCheck.(pair small_nat (int_bound 1000))
    (fun (n_txs, seed) ->
      let n_txs = 2 + (n_txs mod 12) in
      let rng = Rng.create ~seed:(seed + 1) in
      let mp = mk_mempool ~config:{ Mempool.default_config with block_vbytes = 400 } () in
      let l = Mempool.ledger mp in
      let sk, pk = keypair 1 in
      let _, pk2 = keypair 2 in
      (* a few UTXOs, many conflicting spends of them *)
      let ops = Array.init 3 (fun _ -> Ledger.mint l ~value:100_000 ~spk:(p2wpkh pk)) in
      let minted = Ledger.total_value l in
      for k = 1 to n_txs do
        let op = ops.(Rng.int rng 3) in
        let fee = 500 + Rng.int rng 50_000 in
        let tx = spend_tx ~sk ~pk ~from:op ~value:(100_000 - fee) ~to_pk:pk2 () in
        ignore (Mempool.submit mp tx);
        if k mod 3 = 0 then ignore (Mempool.tick mp)
      done;
      for _ = 1 to 6 do
        ignore (Mempool.tick mp)
      done;
      (* each original outpoint spent at most once, value only shrank
         (fees), never grew *)
      Array.for_all
        (fun op ->
          match Ledger.spender_of l op with
          | None -> true
          | Some _ -> not (Ledger.is_unspent l op))
        ops
      && Ledger.total_value l <= minted)

let () =
  Alcotest.run "daric-ledger"
    [ ( "uc-ledger",
        [ Alcotest.test_case "mint and spend" `Quick test_mint_and_spend;
          Alcotest.test_case "adversarial delay" `Quick test_adversarial_delay;
          Alcotest.test_case "validity checks" `Quick test_validity_checks;
          Alcotest.test_case "batched validation" `Quick test_batched_validation;
          Alcotest.test_case "locktime classes" `Quick test_locktime_classes;
          Alcotest.test_case "double spend" `Quick test_double_spend;
          Alcotest.test_case "checkpoint stress" `Quick test_checkpoint_stress;
          QCheck_alcotest.to_alcotest prop_delay_never_negative ] );
      ( "mempool",
        [ Alcotest.test_case "fees and min relay" `Quick test_fee_and_minrelay;
          Alcotest.test_case "rbf rules" `Quick test_rbf_rules;
          Alcotest.test_case "block capacity" `Quick test_block_capacity;
          Alcotest.test_case "feerate priority" `Quick test_higher_feerate_first;
          QCheck_alcotest.to_alcotest prop_no_double_spend ] ) ]
