(* Keyed crypto contexts: keyed/plain differentials and the bounded
   pool's pin/release/eviction contract.

   Every keyed operation must agree pointwise with its plain oracle —
   [sign_keyed] bit-identically, the verifies verdict-identically,
   including adaptor-completed signatures, SIGHASH-flagged wire
   encodings and strict padding rejection. The dune alias runs this
   binary under DPOOL_DOMAINS ∈ {1, 2, 4}: the end-to-end scheme test
   then discharges ledger signature batches on worker pools of each
   size, where pool residency differs (worker domains have empty
   pools), and the verdicts must not. *)

module Group = Daric_crypto.Group
module Schnorr = Daric_crypto.Schnorr
module Keyctx = Daric_crypto.Keyctx
module Adaptor = Daric_crypto.Adaptor
module Sighash = Daric_tx.Sighash
module Rng = Daric_util.Rng
module I = Daric_schemes.Scheme_intf
module Registry = Daric_schemes.Registry

let check_b = Alcotest.(check bool)
let check_i = Alcotest.(check int)

(* Fresh keys per call; contexts built directly (no pool). *)
let keygen seed =
  let rng = Rng.create ~seed in
  Schnorr.keygen rng

(* ------------------------------------------------------------------ *)
(* Directed unit tests.                                                *)

let test_context_basics () =
  let sk, pk = keygen 11 in
  let kc = Keyctx.create ~sk pk in
  check_b "valid key" true (Keyctx.is_valid kc);
  check_b "pk preserved" true (Keyctx.pk kc = pk);
  check_b "no table before first use" false (Keyctx.has_table kc);
  ignore (Keyctx.table kc);
  check_b "table retained after first use" true (Keyctx.has_table kc);
  check_i "table cost as documented" Group.precomp_bytes Keyctx.table_bytes;
  (* a verify-only context refuses to sign *)
  let vc = Keyctx.create pk in
  check_b "verify-only has no sk" true (Keyctx.sk vc = None);
  (match Schnorr.sign_keyed vc "m" with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "sign_keyed accepted a verify-only context");
  (* an invalid (non-subgroup) key builds an invalid context that
     rejects everything, like verify does *)
  let bad =
    let rec first_non_element c =
      if Group.is_element_fast c then first_non_element (c + 1) else c
    in
    first_non_element 2
  in
  let bc = Keyctx.create bad in
  check_b "invalid context" false (Keyctx.is_valid bc);
  let sg = Schnorr.sign sk "m" in
  check_b "keyed rejects under invalid key" false
    (Schnorr.verify_keyed bc "m" sg);
  check_b "plain rejects under invalid key too" false
    (Schnorr.verify bad "m" sg)

let test_pool_pin_release () =
  Keyctx.clear ();
  let _, pk = keygen 21 in
  check_b "peek never inserts" true (Keyctx.peek pk = None);
  check_i "empty pool" 0 (Keyctx.stats ()).Keyctx.live;
  check_b "pin inserts" true (Keyctx.pin pk);
  check_b "now resident" true (Keyctx.peek pk <> None);
  check_i "one pinned" 1 (Keyctx.stats ()).Keyctx.pinned;
  check_b "second pin on same key" true (Keyctx.pin pk);
  Keyctx.release pk;
  check_i "still pinned at refcount 1" 1 (Keyctx.stats ()).Keyctx.pinned;
  Keyctx.release pk;
  check_i "unpinned at refcount 0" 0 (Keyctx.stats ()).Keyctx.pinned;
  check_b "entry stays as cache after release" true (Keyctx.peek pk <> None);
  Keyctx.release pk;
  check_i "release past zero is a no-op" 0 (Keyctx.stats ()).Keyctx.pinned;
  Keyctx.clear ();
  check_i "clear empties the pool" 0 (Keyctx.stats ()).Keyctx.live

(* Opening far more "channels" than the pool holds: pins saturate,
   releases stay balanced, and the pool tracks LIVE keys, never
   lifetime. *)
let test_pool_saturation_churn () =
  Keyctx.clear ();
  let n = 10_000 in
  let pks = Array.init n (fun i -> Group.pow_g (i + 2)) in
  (* interleaved open/close: key i closes at i + 64 *)
  let window = 64 in
  let pinned = Array.make n false in
  for i = 0 to n + window - 1 do
    if i < n then pinned.(i) <- Keyctx.pin pks.(i);
    let j = i - window in
    if j >= 0 then Keyctx.release pks.(j);
    let s = Keyctx.stats () in
    if s.Keyctx.live > Keyctx.capacity then
      Alcotest.failf "pool exceeded capacity: %d live at step %d"
        s.Keyctx.live i
  done;
  let s = Keyctx.stats () in
  check_i "no pins left after all closes" 0 s.Keyctx.pinned;
  check_b "pool bounded by capacity, not lifetime"
    true (s.Keyctx.live <= Keyctx.capacity);
  (* every pin inside the first [capacity] was honoured *)
  check_b "early pins were honoured" true
    (Array.for_all (fun b -> b) (Array.sub pinned 0 Keyctx.capacity));
  Keyctx.clear ()

(* Post-eviction verification: evicting a key's context must not change
   any verdict — the pooled path falls back to plain, and re-inserting
   rebuilds the table transparently. *)
let test_eviction_rebuild () =
  Keyctx.clear ();
  let sk, pk = keygen 31 in
  let msg = "state-17" in
  let sg = Schnorr.sign sk msg in
  check_b "pin" true (Keyctx.pin pk);
  check_b "pooled verify (keyed)" true (Schnorr.verify_pooled pk msg sg);
  check_b "table built by pooled verify" true
    (match Keyctx.peek pk with Some kc -> Keyctx.has_table kc | None -> false);
  Keyctx.release pk;
  (* flood the pool with fresh cached entries to force LRU eviction *)
  for i = 0 to Keyctx.capacity + 32 do
    ignore (Keyctx.find (Group.pow_g (100_000 + i)))
  done;
  check_b "evicted after release + pressure" true (Keyctx.peek pk = None);
  check_b "post-eviction verdict identical (plain fallback)" true
    (Schnorr.verify_pooled pk msg sg);
  check_b "tampered still rejected post-eviction" false
    (Schnorr.verify_pooled pk (msg ^ "!") sg);
  (* re-entering the pool rebuilds the table with the same verdict *)
  let kc = Keyctx.find pk in
  check_b "rebuilt context verifies identically" true
    (Schnorr.verify_keyed kc msg sg);
  check_b "table rebuilt" true (Keyctx.has_table kc);
  Keyctx.clear ()

let test_wire_and_flags () =
  Keyctx.clear ();
  let sk, pk = keygen 41 in
  let kc = Keyctx.create ~sk pk in
  let pk_bytes = Schnorr.encode_public_key pk in
  let msg = "wire-msg" in
  List.iter
    (fun flag ->
      let plain = Sighash.sign_message sk flag msg in
      let keyed = Sighash.sign_message_keyed kc flag msg in
      check_b "flagged signature bytes identical" true
        (String.equal plain keyed);
      check_b "plain verifies" true (Sighash.verify_message pk_bytes msg keyed);
      check_b "pooled verifies" true
        (Sighash.verify_message_pooled pk_bytes msg keyed);
      (* strict padding: flipping a padding byte must reject on both *)
      let b = Bytes.of_string keyed in
      Bytes.set b 40 '\001';
      let padded = Bytes.unsafe_to_string b in
      check_b "plain rejects loose padding" false
        (Sighash.verify_message pk_bytes msg padded);
      check_b "pooled rejects loose padding" false
        (Sighash.verify_message_pooled pk_bytes msg padded))
    Sighash.[ All; Anyprevout; Anyprevout_single ];
  (* pooled wire path with the key resident *)
  check_b "pin" true (Keyctx.pin ~sk pk);
  let sigb = Schnorr.sign_bytes_keyed kc msg in
  check_b "resident pooled verify_bytes" true
    (Schnorr.verify_bytes_pooled pk_bytes msg sigb);
  check_b "matches plain verify_bytes" true
    (Schnorr.verify_bytes pk_bytes msg sigb);
  Keyctx.clear ()

let test_adaptor_keyed () =
  let rng = Rng.create ~seed:51 in
  let sk, pk = Schnorr.keygen rng in
  let kc = Keyctx.create ~sk pk in
  ignore (Keyctx.table kc);
  let y, ys = Adaptor.gen_statement rng in
  let msg = "adaptor-msg" in
  let ps = Adaptor.pre_sign sk ys msg in
  check_b "pre-signature verifies" true (Adaptor.pre_verify pk ys msg ps);
  let full = Adaptor.adapt ps y in
  check_b "adapted sig: plain accepts" true (Schnorr.verify pk msg full);
  check_b "adapted sig: keyed accepts" true (Schnorr.verify_keyed kc msg full);
  check_b "witness extraction round-trips" true (Adaptor.extract full ps = y);
  let wrong = Adaptor.adapt ps (Group.scalar_add y 1) in
  check_b "wrong witness: plain rejects" false (Schnorr.verify pk msg wrong);
  check_b "wrong witness: keyed rejects" false
    (Schnorr.verify_keyed kc msg wrong)

(* End-to-end under the configured DPOOL_DOMAINS: a full Daric channel
   lifecycle (open, updates, dishonest close with punishment) runs the
   ledger's domain-parallel signature discharge over pooled contexts —
   worker domains see empty pools and must fall back identically. *)
let test_scheme_end_to_end () =
  let (module S : I.SCHEME) = Registry.find_exn "Daric" in
  let env = I.make_env () in
  match S.open_channel env I.default_config with
  | Error e -> Alcotest.failf "open: %s" (I.error_to_string e)
  | Ok ch ->
      for k = 1 to 5 do
        match S.update ch ~bal_a:(500_000 - (1000 * k)) ~bal_b:(500_000 + (1000 * k)) with
        | Ok () -> ()
        | Error e -> Alcotest.failf "update %d: %s" k (I.error_to_string e)
      done;
      (match S.dishonest_close ch with
      | Ok _ -> ()
      | Error e -> Alcotest.failf "dishonest close: %s" (I.error_to_string e));
      (* key_contexts: a context per known pubkey, all valid *)
      let ctxs = S.key_contexts ch in
      check_i "one context per known pubkey"
        (List.length (S.known_pubkeys ch))
        (List.length ctxs);
      check_b "all contexts valid" true (List.for_all Keyctx.is_valid ctxs)

(* ------------------------------------------------------------------ *)
(* QCheck differentials.                                               *)

let prop_sign_keyed_bit_identical =
  QCheck.Test.make ~name:"sign_keyed = sign (bit-identical)" ~count:300
    QCheck.(pair small_nat (string_of_size Gen.(0 -- 200)))
    (fun (seed, msg) ->
      let sk, pk = keygen (seed + 1) in
      let kc = Keyctx.create ~sk pk in
      Schnorr.sign_keyed kc msg = Schnorr.sign sk msg)

let prop_verify_keyed_agrees =
  QCheck.Test.make
    ~name:"verify_keyed = verify (valid, tampered and cross-key)" ~count:300
    QCheck.(triple small_nat small_nat (string_of_size Gen.(0 -- 100)))
    (fun (seed, tamper, msg) ->
      let sk, pk = keygen (seed + 1) in
      let sk2, pk2 = keygen (seed + 100_000) in
      ignore sk2;
      let kc = Keyctx.create pk and kc2 = Keyctx.create pk2 in
      let sg = Schnorr.sign sk msg in
      (* valid, tampered-s, tampered-r, wrong-key: keyed must track
         plain on every one of them *)
      let cases =
        [ (pk, kc, sg);
          (pk, kc, { sg with Schnorr.s = Group.scalar_add sg.Schnorr.s (1 + tamper) });
          (pk, kc, { sg with Schnorr.r = Group.pow_g (1 + tamper) });
          (pk2, kc2, sg) ]
      in
      List.for_all
        (fun (pk, kc, sg) ->
          Schnorr.verify_keyed kc msg sg = Schnorr.verify pk msg sg
          && Schnorr.verify pk msg sg = Schnorr.verify_naive pk msg sg)
        cases)

let prop_batch_keyed_agrees =
  QCheck.Test.make
    ~name:"batch_verify_keyed = batch_verify = per-item verify" ~count:120
    QCheck.(pair small_nat (list_of_size Gen.(0 -- 16) (pair small_nat bool)))
    (fun (seed, spec) ->
      let items =
        List.mapi
          (fun i (msg_seed, corrupt) ->
            let sk, pk = keygen (seed + (1000 * i) + 1) in
            let msg = Printf.sprintf "m-%d" msg_seed in
            let sg = Schnorr.sign sk msg in
            let sg =
              if corrupt then
                { sg with Schnorr.s = Group.scalar_add sg.Schnorr.s 1 }
              else sg
            in
            (pk, msg, sg))
          spec
      in
      let keyed =
        List.map
          (fun (pk, m, s) ->
            let kc = Keyctx.create pk in
            (kc, m, s))
          items
      in
      let per_item = List.for_all (fun (pk, m, s) -> Schnorr.verify pk m s) items in
      Schnorr.batch_verify_keyed keyed = per_item
      && Schnorr.batch_verify items = per_item)

(* Pool residency must never change a pooled verdict: pin a random
   subset of the batch's keys, compare against the plain oracles. *)
let prop_pooled_residency_irrelevant =
  QCheck.Test.make
    ~name:"verify_pooled / batch_verify_pooled invariant under pinning"
    ~count:120
    QCheck.(
      pair small_nat (list_of_size Gen.(0 -- 12) (triple small_nat bool bool)))
    (fun (seed, spec) ->
      Keyctx.clear ();
      let items =
        List.mapi
          (fun i (msg_seed, corrupt, pin) ->
            let sk, pk = keygen (seed + (1000 * i) + 1) in
            let msg = Printf.sprintf "p-%d" msg_seed in
            let sg = Schnorr.sign sk msg in
            let sg =
              if corrupt then { sg with Schnorr.r = Group.pow_g (i + 1) }
              else sg
            in
            if pin then ignore (Keyctx.pin pk);
            (pk, msg, sg))
          spec
      in
      let per_item = List.for_all (fun (pk, m, s) -> Schnorr.verify pk m s) items in
      let ok =
        Schnorr.batch_verify_pooled items = per_item
        && List.for_all
             (fun (pk, m, s) ->
               Schnorr.verify_pooled pk m s = Schnorr.verify pk m s)
             items
      in
      Keyctx.clear ();
      ok)

let () =
  let qc = QCheck_alcotest.to_alcotest in
  Alcotest.run "daric-keyctx"
    [ ( "context",
        [ Alcotest.test_case "basics and invalid keys" `Quick
            test_context_basics;
          Alcotest.test_case "adaptor signatures through keyed verify" `Quick
            test_adaptor_keyed;
          Alcotest.test_case "wire encodings, SIGHASH flags, padding" `Quick
            test_wire_and_flags ] );
      ( "pool",
        [ Alcotest.test_case "pin/release/peek contract" `Quick
            test_pool_pin_release;
          Alcotest.test_case "10k-channel churn stays bounded" `Quick
            test_pool_saturation_churn;
          Alcotest.test_case "eviction rebuilds transparently" `Quick
            test_eviction_rebuild ] );
      ( "end-to-end",
        [ Alcotest.test_case "daric lifecycle over pooled contexts" `Quick
            test_scheme_end_to_end ] );
      ( "differential",
        [ qc prop_sign_keyed_bit_identical;
          qc prop_verify_keyed_agrees;
          qc prop_batch_keyed_agrees;
          qc prop_pooled_residency_irrelevant ] ) ]
