(* Model-checker tests: explorer units on a toy model, the clean Daric
   closure sweep, the 10-mutation rediscovery matrix with hand-written
   witness traces, determinism, the scenario-engine differential
   (every scripted harness trace is a path in the explored graph), the
   registry and tower sweeps, and the claim_chan_id satellite. *)

module Mcheck = Daric_mcheck.Mcheck
module Cw = Daric_mcheck.Closure_world
module Sw = Daric_mcheck.Scheme_world
module Tw = Daric_mcheck.Tower_world
module Matrix = Daric_mcheck.Matrix
module Dm = Daric_staticcheck.Daricmodel
module I = Daric_schemes.Scheme_intf
module H = Daric_schemes.Harness

let check = Alcotest.check
let checki = Alcotest.(check int)
let checkb = Alcotest.(check bool)

(* ------------------------------------------------------------------ *)
(* Toy model: a counter with +1/+2 moves, violating at >= 5.           *)

module Toy = struct
  let name = "toy"

  type world = int ref
  type action = int
  type snap = int

  let action_to_string = string_of_int
  let init () = ref 0
  let actions w = if !w >= 20 then [] else [ 1; 2 ]
  let apply w a = w := !w + a
  let fingerprint w = string_of_int !w

  let check w =
    if !w >= 5 then [ { Mcheck.invariant = "ge5"; detail = "counter >= 5" } ]
    else []

  let snapshot w = !w
  let restore w s = w := s
end

let toy = (module Toy : Mcheck.MODEL)

let test_toy_dedup () =
  let r =
    Mcheck.explore
      ~config:{ Mcheck.max_depth = 18; max_states = 100_000; iterative = false }
      (module struct
        include Toy

        let check _ = []
      end)
  in
  (* Reachable counter values are 0..21: dedup must collapse the
     exponential tree onto at most that many states. *)
  checkb "far fewer states than transitions" true (r.Mcheck.visited <= 22);
  checkb "tree larger than state count" true
    (r.Mcheck.transitions > r.Mcheck.visited);
  checkb "not truncated" true (not r.Mcheck.truncated);
  checki "no violations" 0 (List.length r.Mcheck.counterexamples)

let test_toy_depth_bound () =
  let shallow =
    Mcheck.explore
      ~config:{ Mcheck.max_depth = 2; max_states = 100_000; iterative = false }
      toy
  in
  checki "unreachable at depth 2" 0 (List.length shallow.Mcheck.counterexamples);
  let deep =
    Mcheck.explore
      ~config:{ Mcheck.max_depth = 6; max_states = 100_000; iterative = true }
      toy
  in
  match deep.Mcheck.counterexamples with
  | [ c ] ->
      check (Alcotest.string) "invariant" "ge5" c.Mcheck.violation.invariant;
      (* Iterative deepening finds the violation at depth 3 (2+2+1);
         greedy minimization cannot shrink it further. *)
      checki "minimized to three actions" 3 (List.length c.Mcheck.trace);
      checki "found at depth 3" 3 deep.Mcheck.depth
  | cs -> Alcotest.failf "expected one counterexample, got %d" (List.length cs)

let test_toy_budget () =
  let r =
    Mcheck.explore
      ~config:{ Mcheck.max_depth = 18; max_states = 3; iterative = false }
      (module struct
        include Toy

        let check _ = []
      end)
  in
  checkb "budget marks truncation" true r.Mcheck.truncated

let test_toy_minimize () =
  let trace = [ "1"; "2"; "1"; "1"; "2" ] in
  checkb "witness violates" true
    (Mcheck.violates toy ~invariant:"ge5" trace);
  let m = Mcheck.minimize toy ~invariant:"ge5" trace in
  checkb "still violates" true (Mcheck.violates toy ~invariant:"ge5" m);
  checki "minimized to three actions" 3 (List.length m);
  (* No single further deletion may survive. *)
  List.iteri
    (fun i _ ->
      let m' = List.filteri (fun j _ -> j <> i) m in
      checkb "1-minimal" false (Mcheck.violates toy ~invariant:"ge5" m'))
    m

(* ------------------------------------------------------------------ *)
(* Clean Daric closure sweep.                                          *)

let clean_config =
  { Mcheck.max_depth = 18; max_states = 300_000; iterative = false }

let test_clean_sweep () =
  let r = Mcheck.explore ~config:clean_config (module (val Cw.model ())) in
  checkb "exhaustive (not truncated)" true (not r.Mcheck.truncated);
  (match r.Mcheck.counterexamples with
  | [] -> ()
  | c :: _ ->
      Alcotest.failf "clean Daric violated %s via [%s]"
        c.Mcheck.violation.invariant
        (String.concat "; " c.Mcheck.trace));
  checkb "explored a nontrivial space" true (r.Mcheck.visited > 100)

(* ------------------------------------------------------------------ *)
(* Mutation matrix: every seeded closure defect must be rediscovered    *)
(* as an invariant violation, with a minimized counterexample no       *)
(* longer than the hand-written witness trace.                         *)

let ticks n = List.init n (fun _ -> "tick")

(* Hand-written witness per mutation: (expected invariant, trace). *)
let witnesses : (Dm.mutation * string * string list) list =
  [ (* Revocation for the only stale state is gone: Alice can only
       enforce the stale split — resolution without punishment. *)
    (Dm.Drop_revocation, Mcheck.punish_or_refund,
     "bob-commit(0,+0)" :: ticks 6);
    (* CLTV ordering reversed: the stale commit's output demands
       s0+1, which neither revocation (s0+0) nor split (s0+0) meets. *)
    (Dm.Swap_cltv_params, Mcheck.bounded_closure,
     "bob-commit(0,+0)" :: ticks 11);
    (* Split nLockTime one below its commit's CLTV: Alice's own close
       can never be enforced. *)
    (Dm.Off_by_one_locktime, Mcheck.bounded_closure,
     "alice-close" :: ticks 11);
    (* Revocation keys nobody owns: the punish branch never verifies,
       the stale split resolves instead. *)
    (Dm.Orphan_rev_key, Mcheck.punish_or_refund,
     "bob-commit(0,+0)" :: ticks 6);
    (* Split outputs short of the channel cash: honest Bob settles
       below his latest-state balance. *)
    (Dm.Leak_value, Mcheck.no_honest_loss, [ "coop-close"; "tick" ]);
    (* Split outputs above the channel cash: every split and the
       collaborative close are Value_overspent forever. *)
    (Dm.Overpay_outputs, Mcheck.bounded_closure, "coop-close" :: ticks 11);
    (* Height- and timestamp-class CLTV in one script: the commit
       output is unspendable. *)
    (Dm.Mixed_cltv, Mcheck.bounded_closure, "bob-commit(0,+0)" :: ticks 11);
    (* Commit script lost its ENDIF: unparseable, unspendable. *)
    (Dm.Unbalanced_script, Mcheck.bounded_closure,
     "bob-commit(0,+0)" :: ticks 11);
    (* Revocation branch a guaranteed failure: split fallback resolves
       the stale state. *)
    (Dm.Dead_rev_branch, Mcheck.punish_or_refund,
     "bob-commit(0,+0)" :: ticks 6);
    (* Revocation delayed as long as the split: Bob posts the split
       early (delay Δ) so it lands the round the revocation matures,
       before Alice's same-round reaction confirms. *)
    (Dm.Rev_csv_delay, Mcheck.punish_or_refund,
     [ "bob-commit(0,+0)"; "tick"; "tick"; "tick"; "bob-split(+2)"; "tick";
       "tick" ]) ]

let mutant_config =
  { Mcheck.max_depth = 14; max_states = 300_000; iterative = true }

let test_mutation_matrix () =
  List.iter
    (fun (mu, invariant, witness) ->
      let name = Dm.mutation_name mu in
      let cfg = { Cw.default_cfg with Cw.mutate = Some mu } in
      let m = Cw.model ~cfg () in
      (* The hand-written witness must itself demonstrate the bug... *)
      checkb
        (Printf.sprintf "%s: witness trace violates %s" name invariant)
        true
        (Mcheck.violates (module (val m)) ~invariant witness);
      (* ...and the checker must rediscover it unaided, with a
         minimized counterexample no longer than the witness. *)
      let r = Mcheck.explore ~config:mutant_config (module (val m)) in
      match
        List.find_opt
          (fun (c : Mcheck.counterexample) ->
            c.Mcheck.violation.invariant = invariant)
          r.Mcheck.counterexamples
      with
      | None ->
          Alcotest.failf "%s: %s not rediscovered (found: %s)" name invariant
            (String.concat ", "
               (List.map
                  (fun (c : Mcheck.counterexample) ->
                    c.Mcheck.violation.invariant)
                  r.Mcheck.counterexamples))
      | Some c ->
          checkb
            (Printf.sprintf "%s: minimized (%d) <= witness (%d)" name
               (List.length c.Mcheck.trace)
               (List.length witness))
            true
            (List.length c.Mcheck.trace <= List.length witness);
          checkb
            (Printf.sprintf "%s: minimized trace still violates" name)
            true
            (Mcheck.violates (module (val m)) ~invariant c.Mcheck.trace))
    witnesses

(* ------------------------------------------------------------------ *)
(* Determinism: same model, same bounds — identical exploration.       *)

let test_determinism () =
  let run () =
    let cfg = { Cw.default_cfg with Cw.mutate = Some Dm.Rev_csv_delay } in
    Mcheck.explore ~config:mutant_config (module (val Cw.model ~cfg ()))
  in
  let a = run () and b = run () in
  checki "visited" a.Mcheck.visited b.Mcheck.visited;
  checki "transitions" a.Mcheck.transitions b.Mcheck.transitions;
  checki "depth" a.Mcheck.depth b.Mcheck.depth;
  check
    Alcotest.(list (list string))
    "traces"
    (List.map (fun (c : Mcheck.counterexample) -> c.Mcheck.trace)
       a.Mcheck.counterexamples)
    (List.map (fun (c : Mcheck.counterexample) -> c.Mcheck.trace)
       b.Mcheck.counterexamples)

(* ------------------------------------------------------------------ *)
(* Scenario-engine differential: every scripted harness trace (k       *)
(* updates then one close) is a path in the explored lifecycle graph — *)
(* every prefix state's fingerprint was visited — and the replayed     *)
(* outcome agrees with Harness.run on resolution and punishment.       *)

let test_scenario_differential () =
  List.iter
    (fun scheme_name ->
      let m =
        match Sw.model_by_name scheme_name with
        | Some m -> m
        | None -> Alcotest.failf "scheme %s not registered" scheme_name
      in
      let module M = (val m) in
      let r =
        Mcheck.explore ~config:Matrix.lifecycle_config
          (module M : Mcheck.MODEL)
      in
      checki
        (scheme_name ^ ": lifecycle sweep is clean")
        0
        (List.length r.Mcheck.counterexamples);
      List.iter
        (fun (updates, close, close_str) ->
          let trace =
            List.init updates (fun _ -> "update") @ [ close_str ]
          in
          (* Every prefix of the scripted trace is an explored state. *)
          List.iteri
            (fun i _ ->
              let prefix = List.filteri (fun j _ -> j <= i) trace in
              match Mcheck.replay (module M) prefix with
              | None ->
                  Alcotest.failf "%s: prefix [%s] does not replay"
                    scheme_name
                    (String.concat "; " prefix)
              | Some w ->
                  checkb
                    (Printf.sprintf "%s: prefix [%s] explored" scheme_name
                       (String.concat "; " prefix))
                    true
                    (Mcheck.contains r (M.fingerprint w)))
            trace;
          (* And the replayed endpoint agrees with the scenario engine. *)
          match Mcheck.replay (module M) trace with
          | None -> Alcotest.failf "%s: full trace does not replay" scheme_name
          | Some w -> (
              match
                ( Sw.outcome w,
                  H.run_fresh ~delta:1
                    (Option.get (Daric_schemes.Registry.find scheme_name))
                    { H.updates; close = (close :> H.close) } )
              with
              | Some (_, o), Ok report ->
                  let ho = Option.get report.H.outcome in
                  checkb
                    (Printf.sprintf "%s/%s/%d: resolved agrees" scheme_name
                       close_str updates)
                    ho.I.resolved o.I.resolved;
                  checkb
                    (Printf.sprintf "%s/%s/%d: punished agrees" scheme_name
                       close_str updates)
                    ho.I.punished o.I.punished
              | None, _ ->
                  Alcotest.failf "%s: replayed trace has no outcome"
                    scheme_name
              | _, Error e ->
                  Alcotest.failf "%s: harness run failed: %s" scheme_name
                    (I.error_to_string e)))
        (List.concat_map
           (fun updates ->
             (if updates >= 1 then
                [ (updates, `Dishonest, "close:dishonest") ]
              else [])
             @ [ (updates, `Collaborative, "close:coop");
                 (updates, `Force, "close:force") ])
           [ 0; 1; 3 ]))
    [ "Daric"; "Lightning"; "eltoo" ]

(* ------------------------------------------------------------------ *)
(* Registry-wide sweeps: every registered scheme's lifecycle world is  *)
(* clean; the Daric tower is clean under withholding while the         *)
(* Lightning tower exhibits exactly the expected punish-or-refund      *)
(* finding, with the canonical withhold-then-cheat witness.            *)

let test_registry_sweep () =
  List.iter
    (fun (e : Matrix.entry) ->
      checkb (e.Matrix.model ^ ": ok") true (Matrix.ok e);
      checki
        (e.Matrix.model ^ ": no violations")
        0
        (List.length e.Matrix.result.Mcheck.counterexamples))
    (Matrix.scheme_sweep ())

let test_tower_sweep () =
  match Matrix.tower_sweep () with
  | [ daric; lightning ] ->
      checkb "tower/daric ok" true (Matrix.ok daric);
      checki "tower/daric: clean under withholding" 0
        (List.length daric.Matrix.result.Mcheck.counterexamples);
      checkb "tower/lightning ok (finding expected)" true (Matrix.ok lightning);
      (match lightning.Matrix.result.Mcheck.counterexamples with
      | [ c ] ->
          check Alcotest.string "lightning finding is punish-or-refund"
            Mcheck.punish_or_refund c.Mcheck.violation.Mcheck.invariant;
          checkb "witness withholds a secret" true
            (List.mem "withhold(0)" c.Mcheck.trace);
          checkb "witness publishes the withheld state" true
            (List.mem "cheat(0)" c.Mcheck.trace)
      | cs ->
          Alcotest.failf "lightning tower: expected one finding, got %d"
            (List.length cs))
  | entries ->
      Alcotest.failf "tower sweep: expected 2 entries, got %d"
        (List.length entries)

(* ------------------------------------------------------------------ *)
(* claim_chan_id: two instances of the default config on one env must  *)
(* derive distinct channel ids instead of colliding.                   *)

let test_claim_chan_id () =
  let env = I.make_env () in
  check Alcotest.(string) "first claim keeps the id" "c"
    (I.claim_chan_id env "c");
  check Alcotest.(string) "second claim derives" "c~1"
    (I.claim_chan_id env "c");
  check Alcotest.(string) "third claim derives again" "c~2"
    (I.claim_chan_id env "c");
  (* And through a real scheme: two Daric opens with identical configs
     share one env without clobbering each other's party state. *)
  let env = I.make_env () in
  let open_one () =
    match
      Daric_schemes.Daric_scheme.Scheme.open_channel env I.default_config
    with
    | Ok s -> s
    | Error e -> Alcotest.failf "open failed: %s" (I.error_to_string e)
  in
  let s1 = open_one () in
  let s2 = open_one () in
  checkb "distinct channel ids" true
    (Daric_schemes.Daric_scheme.chan_id s1
    <> Daric_schemes.Daric_scheme.chan_id s2);
  (match Daric_schemes.Daric_scheme.Scheme.update s1 ~bal_a:499_000 ~bal_b:501_000 with
  | Ok () -> ()
  | Error e -> Alcotest.failf "update s1 failed: %s" (I.error_to_string e));
  match Daric_schemes.Daric_scheme.Scheme.update s2 ~bal_a:498_000 ~bal_b:502_000 with
  | Ok () -> ()
  | Error e -> Alcotest.failf "update s2 failed: %s" (I.error_to_string e)

(* ------------------------------------------------------------------ *)

let () =
  Alcotest.run "mcheck"
    [ ("toy",
       [ Alcotest.test_case "dedup" `Quick test_toy_dedup;
         Alcotest.test_case "depth bound" `Quick test_toy_depth_bound;
         Alcotest.test_case "budget" `Quick test_toy_budget;
         Alcotest.test_case "minimize" `Quick test_toy_minimize ]);
      ("closure",
       [ Alcotest.test_case "clean sweep" `Quick test_clean_sweep;
         Alcotest.test_case "mutation matrix" `Slow test_mutation_matrix;
         Alcotest.test_case "determinism" `Quick test_determinism ]);
      ("schemes",
       [ Alcotest.test_case "scenario differential" `Slow
           test_scenario_differential;
         Alcotest.test_case "registry sweep" `Quick test_registry_sweep ]);
      ("tower",
       [ Alcotest.test_case "tower sweep" `Quick test_tower_sweep ]);
      ("satellites",
       [ Alcotest.test_case "claim_chan_id" `Quick test_claim_chan_id ]) ]
