(* Persistence tests: a party restarted from its constant-size blob
   can keep updating, close, and punish — the operational form of the
   Table 1 O(1)-storage claim. *)

module Tx = Daric_tx.Tx
module Ledger = Daric_chain.Ledger
module Party = Daric_core.Party
module Driver = Daric_core.Driver
module Txs = Daric_core.Txs
module Persist = Daric_core.Persist

let check_b = Alcotest.(check bool)
let check_i = Alcotest.(check int)

let session ?(seed = 5) () =
  let d = Driver.create ~delta:1 ~seed () in
  let alice = Party.create ~pid:"alice" ~seed:(seed + 1) () in
  let bob = Party.create ~pid:"bob" ~seed:(seed + 2) () in
  Driver.add_party d alice;
  Driver.add_party d bob;
  Driver.open_channel d ~id:"c" ~alice ~bob ~bal_a:60_000 ~bal_b:40_000 ();
  assert (Driver.run_until_operational d ~id:"c" ~alice ~bob);
  (d, alice, bob)

let do_update d alice bob ~bal_a =
  let c = Party.chan_exn alice "c" in
  let pk_a, pk_b = Party.main_pks c in
  let theta = Txs.balance_state ~pk_a ~pk_b ~bal_a ~bal_b:(100_000 - bal_a) in
  Driver.update_channel d ~id:"c" ~initiator:alice ~responder:bob ~theta

let test_blob_roundtrip () =
  let d, alice, bob = session () in
  assert (do_update d alice bob ~bal_a:55_000);
  let c = Party.chan_exn alice "c" in
  match Persist.encode_chan c with
  | Error e -> Alcotest.fail (Persist.error_to_string e)
  | Ok blob ->
      let fresh = Party.create ~pid:"alice" ~seed:99 () in
      (match Persist.restore_chan fresh blob with
      | Error e -> Alcotest.fail (Persist.error_to_string e)
      | Ok () ->
          let c' = Party.chan_exn fresh "c" in
          check_i "sn restored" c.Party.sn c'.Party.sn;
          check_b "state restored" true (Party.outputs_equal c.Party.st c'.Party.st);
          check_b "keys restored" true
            (c.Party.keys.Daric_core.Keys.main.sk
            = c'.Party.keys.Daric_core.Keys.main.sk);
          check_b "funding restored" true
            (Tx.txid (Option.get c.Party.fund) = Tx.txid (Option.get c'.Party.fund));
          check_b "revocation sigs restored" true
            (c.Party.rev_sig_theirs = c'.Party.rev_sig_theirs))

let test_blob_size_constant () =
  let d, alice, bob = session () in
  assert (do_update d alice bob ~bal_a:59_000);
  let size_at_1 =
    match Persist.blob_size (Party.chan_exn alice "c") with
    | Ok n -> n
    | Error e -> Alcotest.fail (Persist.error_to_string e)
  in
  for k = 2 to 30 do
    assert (do_update d alice bob ~bal_a:(60_000 - (100 * k)))
  done;
  let size_at_30 =
    match Persist.blob_size (Party.chan_exn alice "c") with
    | Ok n -> n
    | Error e -> Alcotest.fail (Persist.error_to_string e)
  in
  check_i "blob size constant across updates" size_at_1 size_at_30;
  check_b "blob is small" true (size_at_30 < 2_500)

(* The restored party continues operating: more updates and a close. *)
let test_restored_party_operates () =
  let d, alice, bob = session () in
  assert (do_update d alice bob ~bal_a:50_000);
  let blob =
    match Persist.encode_chan (Party.chan_exn alice "c") with
    | Ok b -> b
    | Error e -> Alcotest.fail (Persist.error_to_string e)
  in
  (* simulate a restart: replace alice by a fresh process sharing only
     the blob; re-register under the same network identity *)
  let alice2 = Party.create ~pid:"alice" ~seed:1234 () in
  (match Persist.restore_chan alice2 blob with
  | Ok () -> ()
  | Error e -> Alcotest.fail (Persist.error_to_string e));
  let d2 = d in
  (* swap the party object inside the driver by corrupting the old one
     and driving the new one manually *)
  Driver.corrupt d2 "alice";
  (* the restored party can still enforce the latest state on chain *)
  Party.force_close alice2 (Driver.ctx d2 "alice") (Party.chan_exn alice2 "c");
  for _ = 1 to 15 do
    Driver.step d2;
    Party.end_of_round alice2 (Driver.ctx d2 "alice")
  done;
  check_b "restored party closed on chain" true
    (Driver.saw_event alice2 (function Party.Closed _ -> true | _ -> false));
  ignore bob

(* The restored party can still punish. *)
let test_restored_party_punishes () =
  let d, alice, bob = session ~seed:11 () in
  let old_commit = Option.get (Party.chan_exn bob "c").Party.commit_mine in
  assert (do_update d alice bob ~bal_a:90_000);
  let blob =
    match Persist.encode_chan (Party.chan_exn alice "c") with
    | Ok b -> b
    | Error e -> Alcotest.fail (Persist.error_to_string e)
  in
  let alice2 = Party.create ~pid:"alice" ~seed:4321 () in
  (match Persist.restore_chan alice2 blob with
  | Ok () -> ()
  | Error e -> Alcotest.fail (Persist.error_to_string e));
  Driver.corrupt d "alice";
  Driver.corrupt d "bob";
  Driver.adversary_post d old_commit;
  for _ = 1 to 10 do
    Driver.step d;
    Party.end_of_round alice2 (Driver.ctx d "alice")
  done;
  check_b "restored party punished the replay" true
    (Driver.saw_event alice2 (function Party.Punished _ -> true | _ -> false));
  let rv = Option.get (Party.chan_exn alice2 "c").Party.punish_posted in
  check_i "full capacity recovered" 100_000 (Tx.total_output_value rv)

let test_reject_malformed () =
  let d, alice, bob = session ~seed:21 () in
  assert (do_update d alice bob ~bal_a:50_000);
  let blob =
    match Persist.encode_chan (Party.chan_exn alice "c") with
    | Ok b -> b
    | Error e -> Alcotest.fail (Persist.error_to_string e)
  in
  let fresh () = Party.create ~pid:"x" ~seed:7 () in
  check_b "truncated -> Truncated" true
    (Persist.restore_chan (fresh ())
       (String.sub blob 0 (String.length blob - 3))
    = Error Persist.Truncated);
  check_b "padded -> Bad_field" true
    (match Persist.restore_chan (fresh ()) (blob ^ "zz") with
    | Error (Persist.Bad_field _) -> true
    | _ -> false);
  check_b "bad magic -> Bad_magic" true
    (Persist.restore_chan (fresh ()) ("XXXXXXX" ^ String.sub blob 7 (String.length blob - 7))
    = Error Persist.Bad_magic);
  let bumped = Bytes.of_string blob in
  Bytes.set bumped 7 '\xff';
  check_b "future version -> Bad_version" true
    (Persist.restore_chan (fresh ()) (Bytes.to_string bumped)
    = Error Persist.Bad_version);
  let p = fresh () in
  check_b "first restore ok" true (Persist.restore_chan p blob |> Result.is_ok);
  check_b "duplicate -> Bad_field" true
    (match Persist.restore_chan p blob with
    | Error (Persist.Bad_field _) -> true
    | _ -> false)

let test_reject_mid_update () =
  let d, alice, bob = session ~seed:31 () in
  let c = Party.chan_exn alice "c" in
  let pk_a, pk_b = Party.main_pks c in
  let theta = Txs.balance_state ~pk_a ~pk_b ~bal_a:10_000 ~bal_b:90_000 in
  Party.request_update alice (Driver.ctx d "alice") ~id:"c" ~theta ();
  Driver.step d;
  check_b "mid-update persist refused" true
    (Persist.encode_chan (Party.chan_exn alice "c") |> Result.is_error);
  ignore bob

let () =
  Alcotest.run "daric-persist"
    [ ( "persist",
        [ Alcotest.test_case "roundtrip" `Quick test_blob_roundtrip;
          Alcotest.test_case "constant blob size" `Quick test_blob_size_constant;
          Alcotest.test_case "restored party closes" `Quick
            test_restored_party_operates;
          Alcotest.test_case "restored party punishes" `Quick
            test_restored_party_punishes;
          Alcotest.test_case "malformed rejected" `Quick test_reject_malformed;
          Alcotest.test_case "mid-update refused" `Quick test_reject_mid_update ] ) ]
