(* Crypto substrate tests: FIPS 180-4 and RIPEMD-160 vectors, group
   laws, Schnorr signatures and Schnorr adaptor signatures. *)

module Sha256 = Daric_crypto.Sha256
module Ripemd160 = Daric_crypto.Ripemd160
module Hash = Daric_crypto.Hash
module Group = Daric_crypto.Group
module Schnorr = Daric_crypto.Schnorr
module Adaptor = Daric_crypto.Adaptor
module Rng = Daric_util.Rng

let check_s = Alcotest.(check string)
let check_b = Alcotest.(check bool)

let test_sha256_vectors () =
  check_s "empty" "e3b0c44298fc1c149afbf4c8996fb92427ae41e4649b934ca495991b7852b855"
    (Sha256.hexdigest "");
  check_s "abc" "ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61f20015ad"
    (Sha256.hexdigest "abc");
  check_s "448-bit"
    "248d6a61d20638b8e5c026930c3e6039a33ce45964ff2167f6ecedd419db06c1"
    (Sha256.hexdigest "abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq");
  check_s "896-bit"
    "cf5b16a778af8380036ce59e7b0492370b249b11e8f07a51afac45037afee9d1"
    (Sha256.hexdigest
       "abcdefghbcdefghicdefghijdefghijkefghijklfghijklmghijklmnhijklmno\
        ijklmnopjklmnopqklmnopqrlmnopqrsmnopqrstnopqrstu");
  check_s "million a"
    "cdc76e5c9914fb9281a1c7e284d73e67f1809a48a497200e046d39ccc7112cd0"
    (Sha256.hexdigest (String.make 1_000_000 'a'))

(* Padding boundaries: lengths 55, 56, 63, 64, 65 exercise the one- vs
   two-block padding logic. Reference values from any standard
   implementation (python hashlib). *)
let test_sha256_padding_boundaries () =
  let cases =
    [ (55, "9f4390f8d30c2dd92ec9f095b65e2b9ae9b0a925a5258e241c9f1e910f734318");
      (56, "b35439a4ac6f0948b6d6f9e3c6af0f5f590ce20f1bde7090ef7970686ec6738a");
      (63, "7d3e74a05d7db15bce4ad9ec0658ea98e3f06eeecf16b4c6fff2da457ddc2f34");
      (64, "ffe054fe7ae0cb6dc65c3af9b61d5209f439851db43d0ba5997337df154668eb");
      (65, "635361c48bb9eab14198e76ea8ab7f1a41685d6ad62aa9146d301d4f17eb0ae0") ]
  in
  List.iter
    (fun (n, expected) ->
      check_s (Fmt.str "len %d" n) expected (Sha256.hexdigest (String.make n 'a')))
    cases

let test_ripemd160_vectors () =
  check_s "empty" "9c1185a5c5e9fc54612808977ee8f548b2258d31" (Ripemd160.hexdigest "");
  check_s "a" "0bdc9d2d256b3ee9daae347be6f4dc835a467ffe" (Ripemd160.hexdigest "a");
  check_s "abc" "8eb208f7e05d987a9b044a8e98c6b087f15a0bfc" (Ripemd160.hexdigest "abc");
  check_s "message digest" "5d0689ef49d2fae572b881b123a85ffa21595f36"
    (Ripemd160.hexdigest "message digest");
  check_s "a..z" "f71c27109c692c1b56bbdceb5b9d2865b3708dbc"
    (Ripemd160.hexdigest "abcdefghijklmnopqrstuvwxyz");
  check_s "digits"
    "9b752e45573d4b39f4dbd3323cab82bf63326bfb"
    (Ripemd160.hexdigest
       (String.concat "" (List.init 8 (fun _ -> "1234567890"))))

let test_hash_combinators () =
  check_b "hash256 = sha256^2" true
    (Hash.hash256 "x" = Sha256.digest (Sha256.digest "x"));
  check_b "hash160 = ripemd160(sha256)" true
    (Hash.hash160 "x" = Ripemd160.digest (Sha256.digest "x"));
  check_b "tagged domain separation" true
    (Hash.tagged "a" "msg" <> Hash.tagged "b" "msg")

let test_group_laws () =
  check_b "p = 2q+1" true (Group.p = (2 * Group.q) + 1);
  check_b "g in subgroup" true (Group.is_element Group.g);
  check_b "g^q = 1" true (Group.pow Group.g Group.q = 1);
  (* exponent laws on a sample *)
  let rng = Rng.create ~seed:99 in
  for _ = 1 to 50 do
    let a = 1 + Rng.int rng (Group.q - 1) in
    let b = 1 + Rng.int rng (Group.q - 1) in
    check_b "g^(a+b) = g^a g^b" true
      (Group.pow Group.g (Group.scalar_add a b)
      = Group.mul (Group.pow Group.g a) (Group.pow Group.g b));
    let x = Group.pow Group.g a in
    check_b "x * x^-1 = 1" true (Group.mul x (Group.inv x) = 1)
  done

let test_schnorr_roundtrip () =
  let rng = Rng.create ~seed:1 in
  for _ = 1 to 20 do
    let sk, pk = Schnorr.keygen rng in
    let msg = Rng.bytes rng 40 in
    let sg = Schnorr.sign sk msg in
    check_b "verifies" true (Schnorr.verify pk msg sg);
    check_b "wrong message fails" false (Schnorr.verify pk (msg ^ "x") sg);
    let sk2, pk2 = Schnorr.keygen rng in
    ignore sk2;
    check_b "wrong key fails" false (Schnorr.verify pk2 msg sg)
  done

let test_schnorr_encoding () =
  let rng = Rng.create ~seed:2 in
  let sk, pk = Schnorr.keygen rng in
  let enc = Schnorr.encode_public_key pk in
  Alcotest.(check int) "pubkey is 33 bytes" 33 (String.length enc);
  check_b "pubkey roundtrip" true (Schnorr.decode_public_key enc = Some pk);
  let sg = Schnorr.sign sk "m" in
  let senc = Schnorr.encode_signature sg in
  Alcotest.(check int) "signature is 73 bytes" 73 (String.length senc);
  check_b "sig roundtrip" true (Schnorr.decode_signature senc = Some sg);
  check_b "bytes verify" true (Schnorr.verify_bytes enc "m" senc)

let test_signature_determinism () =
  let rng = Rng.create ~seed:3 in
  let sk, _ = Schnorr.keygen rng in
  check_b "deterministic nonce" true (Schnorr.sign sk "m" = Schnorr.sign sk "m");
  check_b "distinct messages, distinct sigs" true
    (Schnorr.sign sk "m" <> Schnorr.sign sk "n")

let test_adaptor () =
  let rng = Rng.create ~seed:4 in
  for _ = 1 to 20 do
    let sk, pk = Schnorr.keygen rng in
    let y, ys = Adaptor.gen_statement rng in
    let msg = Rng.bytes rng 32 in
    let ps = Adaptor.pre_sign sk ys msg in
    check_b "pre-verifies" true (Adaptor.pre_verify pk ys msg ps);
    (* a pre-signature is NOT a valid signature *)
    check_b "pre-sig not full sig" false
      (Schnorr.verify pk msg { Schnorr.r = ps.Adaptor.r; s = ps.Adaptor.s_pre });
    let full = Adaptor.adapt ps y in
    check_b "adapted verifies" true (Schnorr.verify pk msg full);
    Alcotest.(check int) "witness extraction" y (Adaptor.extract full ps)
  done

let test_adaptor_wrong_statement () =
  let rng = Rng.create ~seed:5 in
  let sk, pk = Schnorr.keygen rng in
  let _, ys = Adaptor.gen_statement rng in
  let y2, ys2 = Adaptor.gen_statement rng in
  let ps = Adaptor.pre_sign sk ys "m" in
  check_b "pre-verify with wrong statement fails" false
    (Adaptor.pre_verify pk ys2 "m" ps);
  check_b "adapting with wrong witness fails" false
    (Schnorr.verify pk "m" (Adaptor.adapt ps y2))

(* qcheck properties *)
let prop_sign_verify =
  QCheck.Test.make ~name:"schnorr sign/verify for arbitrary messages"
    ~count:200
    QCheck.(pair small_nat (string_of_size Gen.(0 -- 200)))
    (fun (seed, msg) ->
      let rng = Rng.create ~seed:(seed + 1) in
      let sk, pk = Schnorr.keygen rng in
      Schnorr.verify pk msg (Schnorr.sign sk msg))

let prop_group_assoc =
  QCheck.Test.make ~name:"group multiplication associativity" ~count:500
    QCheck.(triple pos_int pos_int pos_int)
    (fun (a, b, c) ->
      let f x = 1 + (x mod (Group.p - 1)) in
      let a = f a and b = f b and c = f c in
      Group.mul (Group.mul a b) c = Group.mul a (Group.mul b c))

let prop_hex_roundtrip =
  QCheck.Test.make ~name:"hex roundtrip" ~count:500
    QCheck.(string_of_size Gen.(0 -- 100))
    (fun s -> Daric_util.Hex.decode (Daric_util.Hex.encode s) = s)

(* ------------------------------------------------------------------ *)
(* Fast-path vs reference-path agreement.                              *)

let prop_pow_g =
  QCheck.Test.make ~name:"pow_g agrees with pow" ~count:500 QCheck.int
    (fun e ->
      let e = ((e mod Group.q) + Group.q) mod Group.q in
      Group.pow_g e = Group.pow Group.g e)

let prop_pow_precomp =
  QCheck.Test.make ~name:"pow_precomp agrees with pow" ~count:200
    QCheck.(pair pos_int pos_int)
    (fun (b, e) ->
      let base = Group.pow_g (1 + (b mod (Group.q - 1))) in
      let e = e mod Group.q in
      Group.pow_precomp (Group.precompute base) e = Group.pow base e)

let prop_dbl_pow =
  QCheck.Test.make ~name:"dbl_pow agrees with two pows" ~count:300
    QCheck.(quad pos_int pos_int pos_int pos_int)
    (fun (a, ea, b, eb) ->
      let elt x = Group.pow_g (1 + (x mod (Group.q - 1))) in
      let a = elt a and b = elt b in
      let ea = ea mod Group.q and eb = eb mod Group.q in
      Group.dbl_pow a ea b eb = Group.mul (Group.pow a ea) (Group.pow b eb))

let prop_multi_pow =
  QCheck.Test.make ~name:"multi_pow agrees with folded pows" ~count:100
    QCheck.(list_of_size Gen.(0 -- 12) (pair pos_int pos_int))
    (fun raw ->
      let terms =
        List.map
          (fun (b, e) ->
            (Group.pow_g (1 + (b mod (Group.q - 1))), e mod Group.q))
          raw
      in
      Group.multi_pow terms
      = List.fold_left
          (fun acc (b, e) -> Group.mul acc (Group.pow b e))
          1 terms)

let prop_membership_fast =
  QCheck.Test.make ~name:"is_element_fast agrees with is_element"
    ~count:500 QCheck.int (fun x ->
      let x = 1 + (abs x mod (Group.p + 5)) in
      Group.is_element_fast x = Group.is_element x)

let test_membership_edge_cases () =
  (* subgroup members are exactly the quadratic residues *)
  check_b "g member (fast)" true (Group.is_element_fast Group.g);
  check_b "1 member" true (Group.is_element_fast 1);
  (* p = 3 mod 4, so -1 = p-1 is a non-residue: outside the subgroup *)
  check_b "p-1 not member (fast)" false (Group.is_element_fast (Group.p - 1));
  check_b "p-1 not member (reference)" false (Group.is_element (Group.p - 1));
  check_b "0 rejected" false (Group.is_element_fast 0);
  check_b "p rejected" false (Group.is_element_fast Group.p);
  let rng = Rng.create ~seed:11 in
  for _ = 1 to 200 do
    (* g^x is always a member; g^x * (p-1) never is *)
    let m = Group.pow_g (1 + Rng.int rng (Group.q - 1)) in
    check_b "member accepted" true (Group.is_element_fast m);
    let nm = Group.mul m (Group.p - 1) in
    check_b "non-member rejected (fast)" false (Group.is_element_fast nm);
    check_b "non-member rejected (reference)" false (Group.is_element nm)
  done

let prop_tagged_cache =
  QCheck.Test.make ~name:"tagged agrees with tagged_uncached" ~count:300
    QCheck.(pair (string_of_size Gen.(0 -- 20)) (string_of_size Gen.(0 -- 100)))
    (fun (tag, msg) -> Hash.tagged tag msg = Hash.tagged_uncached tag msg)

let prop_verify_equiv =
  QCheck.Test.make ~name:"verify agrees with verify_naive" ~count:200
    QCheck.(pair small_nat (string_of_size Gen.(0 -- 80)))
    (fun (seed, msg) ->
      let rng = Rng.create ~seed:(seed + 7) in
      let sk, pk = Schnorr.keygen rng in
      let sg = Schnorr.sign sk msg in
      (* valid signature: both accept *)
      Schnorr.verify pk msg sg = Schnorr.verify_naive pk msg sg
      && Schnorr.verify pk msg sg
      (* corrupted s: both reject *)
      && (let bad = { sg with Schnorr.s = Group.scalar_add sg.Schnorr.s 1 } in
          Schnorr.verify pk msg bad = Schnorr.verify_naive pk msg bad
          && not (Schnorr.verify pk msg bad))
      (* corrupted R: both reject *)
      && (let bad = { sg with Schnorr.r = Group.pow_g 12345 } in
          Schnorr.verify pk msg bad = Schnorr.verify_naive pk msg bad
          && not (Schnorr.verify pk msg bad))
      (* wrong message: both reject *)
      && Schnorr.verify pk (msg ^ "!") sg
         = Schnorr.verify_naive pk (msg ^ "!") sg
         && not (Schnorr.verify pk (msg ^ "!") sg))

let batch_of_rng rng n =
  List.init n (fun _ ->
      let sk, pk = Schnorr.keygen rng in
      let msg = Rng.bytes rng 32 in
      (pk, msg, Schnorr.sign sk msg))

let corrupt_at i items =
  List.mapi
    (fun j ((pk, msg, sg) as item) ->
      if j = i then (pk, msg, { sg with Schnorr.s = Group.scalar_add sg.Schnorr.s 1 })
      else item)
    items

let test_batch_verify () =
  let rng = Rng.create ~seed:21 in
  check_b "empty batch accepts" true (Schnorr.batch_verify []);
  List.iter
    (fun n ->
      let items = batch_of_rng rng n in
      check_b (Fmt.str "valid batch of %d accepts" n) true
        (Schnorr.batch_verify items);
      check_b (Fmt.str "detailed ok for %d" n) true
        (Schnorr.batch_verify_detailed items = Ok ());
      (* corrupting any single element must be caught and pinpointed *)
      for i = 0 to min (n - 1) 3 do
        let bad = corrupt_at i items in
        check_b (Fmt.str "batch of %d, bad %d rejects" n i) false
          (Schnorr.batch_verify bad);
        check_b (Fmt.str "batch of %d, bad %d pinpointed" n i) true
          (Schnorr.batch_verify_detailed bad = Error [ i ])
      done)
    [ 1; 2; 3; 8; 32 ];
  (* several bad elements: all reported, in order *)
  let items = batch_of_rng rng 10 in
  let bad = corrupt_at 2 (corrupt_at 7 items) in
  check_b "multiple bad indices pinpointed" true
    (Schnorr.batch_verify_detailed bad = Error [ 2; 7 ])

let prop_batch_verify_equiv =
  QCheck.Test.make ~name:"batch_verify iff all individually verify"
    ~count:100
    QCheck.(pair small_nat (list_of_size Gen.(0 -- 8) bool))
    (fun (seed, flips) ->
      let rng = Rng.create ~seed:(seed + 31) in
      let items =
        List.map
          (fun flip ->
            let sk, pk = Schnorr.keygen rng in
            let msg = Rng.bytes rng 24 in
            let sg = Schnorr.sign sk msg in
            let sg =
              if flip then { sg with Schnorr.s = Group.scalar_add sg.Schnorr.s 1 }
              else sg
            in
            (pk, msg, sg))
          flips
      in
      Schnorr.batch_verify items
      = List.for_all (fun (pk, msg, sg) -> Schnorr.verify pk msg sg) items)

let test_strict_encodings () =
  let rng = Rng.create ~seed:41 in
  let sk, pk = Schnorr.keygen rng in
  let sg = Schnorr.sign sk "m" in
  let senc = Schnorr.encode_signature sg in
  (* the last byte carries the SIGHASH flag: still decodes *)
  let flagged = Bytes.of_string senc in
  Bytes.set flagged 72 '\x01';
  check_b "flag byte allowed" true
    (Schnorr.decode_signature (Bytes.to_string flagged) <> None);
  (* any non-zero interior padding byte is rejected *)
  List.iter
    (fun i ->
      let b = Bytes.of_string senc in
      Bytes.set b i '\x01';
      check_b (Fmt.str "non-zero padding byte %d rejected" i) true
        (Schnorr.decode_signature (Bytes.to_string b) = None))
    [ 8; 9; 40; 70; 71 ];
  check_b "wrong length rejected" true
    (Schnorr.decode_signature (senc ^ "\x00") = None);
  (* public keys: non-zero filler bytes are rejected *)
  let penc = Schnorr.encode_public_key pk in
  List.iter
    (fun i ->
      let b = Bytes.of_string penc in
      Bytes.set b i '\x01';
      check_b (Fmt.str "non-zero filler byte %d rejected" i) true
        (Schnorr.decode_public_key (Bytes.to_string b) = None))
    [ 1; 2; 15; 28 ];
  (* a non-subgroup "key" is rejected by decode *)
  let bad_pk = Bytes.of_string penc in
  Bytes.blit_string (Group.encode_element (Group.p - 1)) 0 bad_pk 29 4;
  check_b "non-subgroup key rejected" true
    (Schnorr.decode_public_key (Bytes.to_string bad_pk) = None)

(* txid/sighash memoization: the cached digest always agrees with a
   fresh recomputation, across distinct construction orders of equal
   bodies and across witness changes (which must not affect the txid). *)
module Tx = Daric_tx.Tx
module Sighash = Daric_tx.Sighash

let test_txid_memo () =
  let rng = Rng.create ~seed:51 in
  for _ = 1 to 50 do
    let mk_out () =
      { Tx.value = 1 + Rng.int rng 100_000;
        spk = Tx.P2wpkh (Rng.bytes rng 20) }
    in
    let mk_in () =
      Tx.input_of_outpoint ~sequence:(Rng.int rng 0xffff)
        { Tx.txid = Rng.bytes rng 32; vout = Rng.int rng 4 }
    in
    let inputs = List.init (1 + Rng.int rng 3) (fun _ -> mk_in ()) in
    let outputs = List.init (1 + Rng.int rng 3) (fun _ -> mk_out ()) in
    let locktime = Rng.int rng 1000 in
    let tx = Tx.make ~inputs ~locktime ~outputs () in
    check_b "txid = txid_uncached" true (Tx.txid tx = Tx.txid_uncached tx);
    (* structurally equal body built separately: same txid *)
    let tx' =
      Tx.make
        ~inputs:(List.map (fun i -> { i with Tx.sequence = i.Tx.sequence }) inputs)
        ~locktime
        ~outputs:(List.map (fun o -> { o with Tx.value = o.Tx.value }) outputs)
        ~witnesses:[ [ Tx.Data "w" ] ] ()
    in
    check_b "equal bodies share txid" true (Tx.txid tx = Tx.txid tx');
    check_b "witness does not affect txid" true
      (Tx.txid tx' = Tx.txid_uncached tx');
    (* sighash messages agree with their uncached recomputation *)
    List.iter
      (fun flag ->
        check_b "sighash memo agrees" true
          (Sighash.message flag tx ~input_index:0
          = Sighash.message_uncached flag tx ~input_index:0))
      [ Sighash.All; Sighash.Anyprevout; Sighash.Anyprevout_single ]
  done

let () =
  Alcotest.run "daric-crypto"
    [ ( "hash",
        [ Alcotest.test_case "sha256 vectors" `Quick test_sha256_vectors;
          Alcotest.test_case "sha256 padding boundaries" `Quick
            test_sha256_padding_boundaries;
          Alcotest.test_case "ripemd160 vectors" `Quick test_ripemd160_vectors;
          Alcotest.test_case "combinators" `Quick test_hash_combinators ] );
      ( "group",
        [ Alcotest.test_case "laws" `Quick test_group_laws;
          QCheck_alcotest.to_alcotest prop_group_assoc ] );
      ( "schnorr",
        [ Alcotest.test_case "roundtrip" `Quick test_schnorr_roundtrip;
          Alcotest.test_case "encodings" `Quick test_schnorr_encoding;
          Alcotest.test_case "determinism" `Quick test_signature_determinism;
          QCheck_alcotest.to_alcotest prop_sign_verify ] );
      ( "adaptor",
        [ Alcotest.test_case "pre-sign/adapt/extract" `Quick test_adaptor;
          Alcotest.test_case "wrong statement" `Quick test_adaptor_wrong_statement ] );
      ( "fastpath",
        [ QCheck_alcotest.to_alcotest prop_pow_g;
          QCheck_alcotest.to_alcotest prop_pow_precomp;
          QCheck_alcotest.to_alcotest prop_dbl_pow;
          QCheck_alcotest.to_alcotest prop_multi_pow;
          QCheck_alcotest.to_alcotest prop_membership_fast;
          Alcotest.test_case "membership edge cases" `Quick
            test_membership_edge_cases;
          QCheck_alcotest.to_alcotest prop_tagged_cache;
          QCheck_alcotest.to_alcotest prop_verify_equiv;
          Alcotest.test_case "batch verify" `Quick test_batch_verify;
          QCheck_alcotest.to_alcotest prop_batch_verify_equiv;
          Alcotest.test_case "strict encodings" `Quick test_strict_encodings;
          Alcotest.test_case "txid/sighash memoization" `Quick test_txid_memo ] );
      ("util", [ QCheck_alcotest.to_alcotest prop_hex_roundtrip ]) ]
