(* Memory-engine differentials.

   The packed watchtower (records as encoded bytes in an arena) is an
   alternative REPRESENTATION of the boxed tower, not an alternative
   behaviour: a random trace of watch / unwatch / fraud / recovery
   operations applied to both backends must leave them observably
   identical — guarded set, punished set, storage bytes, record blobs
   and byte-identical durable snapshots — with the packed side
   additionally surviving a snapshot-recovery in the middle of the
   trace. Body sharing (one commit/split/revocation body per update
   shared by both parties) gets the same treatment against the
   fresh-copy generators. Plus: the arena reclaims churned slots (a
   tower's heap tracks its guarded count, not its lifetime watch
   count), the interner actually shares payloads, and the
   retained-words-per-channel figure at N=1k stays under a regression
   bound. The suite is run under DPOOL_DOMAINS 1/2/4 and once under
   OCAMLRUNPARAM=s=64k (tiny minor heap) via the dune alias. *)

module Tx = Daric_tx.Tx
module Ledger = Daric_chain.Ledger
module Watchtower = Daric_core.Watchtower
module Persist = Daric_core.Persist
module Txs = Daric_core.Txs
module Keys = Daric_core.Keys
module Arena = Daric_util.Arena
module Intern = Daric_util.Intern
module Rng = Daric_util.Rng
module I = Daric_schemes.Scheme_intf
module DS = Daric_schemes.Daric_scheme

let check_b = Alcotest.(check bool)
let check_i = Alcotest.(check int)
let check_sl = Alcotest.(check (list string))

(* ---------------- arena unit behaviour ---------------- *)

let test_arena () =
  let a = Arena.create ~chunk_bytes:256 () in
  let s1 = Arena.store a "hello" in
  let s2 = Arena.store a (String.make 100 'x') in
  check_b "read back" true (Arena.read a s1 = "hello");
  check_b "read back long" true (Arena.read a s2 = String.make 100 'x');
  check_i "live bytes" 105 (Arena.live_bytes a);
  check_i "live slots" 2 (Arena.live_slots a);
  (* in-place replace within the slot's size class *)
  let s1' = Arena.replace a s1 "world!!" in
  check_b "replace reuses slot" true
    (Arena.read a s1' = "world!!" && Arena.live_slots a = 2);
  (* replace that outgrows the class frees and restores *)
  let s1'' = Arena.replace a s1' (String.make 40 'y') in
  check_b "grown replace" true (Arena.read a s1'' = String.make 40 'y');
  Arena.free a s1'';
  Arena.free a s1'';
  (* double free is idempotent *)
  check_i "one slot left" 1 (Arena.live_slots a);
  check_i "live bytes after free" 100 (Arena.live_bytes a);
  (* freed slots are reused: store the same sizes many times and the
     capacity must stop growing *)
  let cap0 = ref 0 in
  for i = 1 to 50 do
    let s = Arena.store a (String.make 40 'z') in
    Arena.free a s;
    if i = 1 then cap0 := Arena.capacity_bytes a
  done;
  check_i "free-list reuse keeps capacity flat" !cap0 (Arena.capacity_bytes a);
  (* blobs larger than a chunk get their own chunk *)
  let big = Arena.store a (String.make 1000 'b') in
  check_b "oversized blob" true (Arena.read a big = String.make 1000 'b')

let test_intern () =
  let a = Intern.string (String.concat "-" [ "intern"; "me" ]) in
  let b = Intern.string (String.concat "-" [ "intern"; "me" ]) in
  check_b "same physical string" true (a == b);
  check_b "content preserved" true (String.equal a "intern-me");
  let long = String.make 4096 'l' in
  check_b "overlong strings pass through" true (Intern.string long == long)

(* ---------------- world builder ---------------- *)

let build_world ?(channels = 4) ?(updates = 1) ~seed () =
  let env = I.make_env ~delta:1 ~seed () in
  let chans =
    Array.init channels (fun k ->
        let cfg =
          { I.default_config with
            chan_id = Printf.sprintf "mm%d" k;
            party_seed = 700 + (2 * k) }
        in
        match DS.Scheme.open_channel env cfg with
        | Ok s -> s
        | Error e -> Alcotest.fail (I.error_to_string e))
  in
  Array.iteri
    (fun k s ->
      for u = 1 to updates do
        match
          DS.Scheme.update s ~bal_a:(400_000 + k + u) ~bal_b:(600_000 - k - u)
        with
        | Ok () -> ()
        | Error e -> Alcotest.fail (I.error_to_string e)
      done)
    chans;
  (env, chans)

(* ---------------- arena-vs-boxed trace differential ---------------- *)

type op = Watch of int | Unwatch of int | Fraud of int | Recover

let show_op = function
  | Watch i -> Printf.sprintf "W%d" i
  | Unwatch i -> Printf.sprintf "U%d" i
  | Fraud i -> Printf.sprintf "F%d" i
  | Recover -> "R"

let chan_id k = Printf.sprintf "mm%d" k

(* Observables that must agree between the two backends after every
   operation. Record blobs are compared as sorted encode_record bytes,
   so the packed arena contents are checked against re-encoded boxed
   records, not just counted. *)
let observe (t : Watchtower.t) =
  let blobs = ref [] in
  Watchtower.iter_record_blobs t (fun b -> blobs := b :: !blobs);
  ( Watchtower.guarded_count t,
    Watchtower.storage_bytes t,
    List.sort String.compare (Watchtower.punished t),
    Watchtower.cursor t,
    List.sort String.compare !blobs )

let run_pair_trace (ops : op list) : unit =
  let nchans = 4 in
  let env, chans = build_world ~channels:nchans ~seed:5 () in
  let packed = ref (Watchtower.create ~backend:Watchtower.Packed ~wid:"m" ()) in
  let boxed = Watchtower.create ~backend:Watchtower.Boxed ~wid:"m" () in
  check_b "backends differ" true
    (Watchtower.backend !packed = Watchtower.Packed
    && Watchtower.backend boxed = Watchtower.Boxed);
  let post tx = Ledger.post env.I.ledger tx ~delay:0 in
  let poll () =
    let round = Ledger.height env.I.ledger in
    (* packed reacts first; the boxed oracle's identical revocation
       post is then a duplicate the ledger rejects — on-chain effect
       identical either way *)
    Watchtower.end_of_round !packed ~round ~ledger:env.I.ledger ~post;
    Watchtower.end_of_round boxed ~round ~ledger:env.I.ledger ~post
  in
  let frauded = Array.make nchans false in
  let apply = function
    | Watch i -> (
        match DS.watch_record chans.(i) with
        | Some r ->
            let a = Watchtower.watch !packed r in
            let b = Watchtower.watch boxed r in
            check_b "watch verdicts agree" true (a = b)
        | None -> Alcotest.fail "no watch record")
    | Unwatch i ->
        Watchtower.unwatch !packed ~channel_id:(chan_id i);
        Watchtower.unwatch boxed ~channel_id:(chan_id i)
    | Fraud i ->
        if not frauded.(i) then begin
          frauded.(i) <- true;
          DS.publish_revoked chans.(i);
          I.settle env 1;
          poll ();
          I.settle env 1;
          poll ()
        end
    | Recover ->
        (* the durable snapshot is representation-independent... *)
        let sp = Persist.encode_tower !packed in
        let sb = Persist.encode_tower boxed in
        check_b "snapshots byte-identical across backends" true
          (String.equal sp sb);
        (* ...and the packed side must survive losing its RAM *)
        (match Persist.restore_tower sp with
        | Ok t -> packed := t
        | Error e -> Alcotest.fail (Persist.error_to_string e))
  in
  List.iteri
    (fun step op ->
      apply op;
      let op_name = show_op op in
      let gp, sp, pp, cp, bp = observe !packed in
      let gb, sb, pb, cb, bb = observe boxed in
      check_i (Printf.sprintf "step %d %s: guarded" step op_name) gb gp;
      check_i (Printf.sprintf "step %d %s: storage bytes" step op_name) sb sp;
      check_sl (Printf.sprintf "step %d %s: punished" step op_name) pb pp;
      check_i (Printf.sprintf "step %d %s: cursor" step op_name) cb cp;
      check_b (Printf.sprintf "step %d %s: record blobs" step op_name) true
        (bp = bb))
    ops;
  (* every fraud on a still-watched channel must have been punished by
     both towers, and the revocations really confirmed *)
  let _, _, punished, _, _ = observe boxed in
  Array.iteri
    (fun i s ->
      if frauded.(i) && List.mem (chan_id i) punished then
        check_b "funding spent for punished channel" false
          (Ledger.is_unspent env.I.ledger (DS.Scheme.funding s)))
    chans

let gen_ops =
  QCheck.Gen.(
    list_size (int_range 1 10)
      (oneof
         [ map (fun i -> Watch i) (int_range 0 3);
           map (fun i -> Unwatch i) (int_range 0 3);
           map (fun i -> Fraud i) (int_range 0 3);
           return Recover ]))

let fuzz_arena_vs_boxed =
  QCheck.Test.make ~count:15 ~name:"arena tower = boxed tower (random traces)"
    (QCheck.make gen_ops
       ~print:(fun ops -> String.concat " " (List.map show_op ops)))
    (fun ops ->
      run_pair_trace ops;
      true)

(* A directed trace hitting the interesting corners in one run:
   watch-all, fraud, re-watch a punished channel, unwatch, recover,
   fraud after recovery. *)
let test_directed_trace () =
  run_pair_trace
    [ Watch 0; Watch 1; Watch 2; Watch 3; Fraud 1; Watch 1; Unwatch 2;
      Recover; Fraud 0; Watch 2; Recover; Fraud 3 ]

(* ---------------- churn: heap tracks guarded count (S1) ---------------- *)

let test_churn_reclaims () =
  let _, chans = build_world ~channels:6 ~seed:9 () in
  let records =
    Array.map
      (fun s ->
        match DS.watch_record s with
        | Some r -> r
        | None -> Alcotest.fail "no record")
      chans
  in
  let t = Watchtower.create ~wid:"churn" () in
  Array.iter (fun r -> ignore (Watchtower.watch t r)) records;
  let live_full = Watchtower.arena_live_bytes t in
  let cap_full = Watchtower.arena_capacity_bytes t in
  check_b "arena holds the records" true (live_full > 0);
  for _cycle = 1 to 8 do
    Array.iter
      (fun (r : Watchtower.record) ->
        Watchtower.unwatch t ~channel_id:r.Watchtower.channel_id)
      records;
    check_i "all reclaimed" 0 (Watchtower.guarded_count t);
    check_i "no live arena bytes" 0 (Watchtower.arena_live_bytes t);
    check_i "storage bytes reclaimed" 0 (Watchtower.storage_bytes t);
    Array.iter (fun r -> ignore (Watchtower.watch t r)) records;
    check_i "re-watched" 6 (Watchtower.guarded_count t)
  done;
  (* 8 churn cycles re-used the free-listed slots: the arena's heap
     footprint tracks the guarded count, not the 54 lifetime watches *)
  check_i "arena capacity flat across churn" cap_full
    (Watchtower.arena_capacity_bytes t);
  check_i "live bytes back to full" live_full (Watchtower.arena_live_bytes t)

(* ---------------- body sharing differential ---------------- *)

let test_body_sharing_differential () =
  (* the same scale trace with body sharing on and off must be
     observably identical everywhere the system can be probed *)
  let probe sharing =
    Txs.set_sharing sharing;
    Fun.protect
      ~finally:(fun () -> Txs.set_sharing true)
      (fun () ->
        let s =
          Daric_analysis.Scale.run ~channels:8 ~updates:2 ~frauds:3 ~seed:21 ()
        in
        ( s.Daric_analysis.Scale.punished,
          s.Daric_analysis.Scale.frauds,
          s.Daric_analysis.Scale.ledger_height,
          s.Daric_analysis.Scale.accepted_txs,
          s.Daric_analysis.Scale.tower_storage_bytes ))
  in
  check_b "shared trace = copied trace" true (probe true = probe false)

let test_body_sharing_physical () =
  let rng = Rng.create ~seed:77 in
  let ka = Keys.generate rng and kb = Keys.generate rng in
  let keys_a = Keys.pub ka and keys_b = Keys.pub kb in
  let funding = { Tx.txid = String.make 32 'f'; vout = 0 } in
  let args () =
    Txs.gen_commit ~funding ~value:1_000 ~keys_a ~keys_b ~s0:500_000_000 ~i:3
      ~rel_lock:6
  in
  let c1, c1' = args () in
  let c2, c2' = args () in
  check_b "both parties share one commit body" true (c1 == c2 && c1' == c2');
  let f1, f1' =
    Txs.gen_commit_fresh ~funding ~value:1_000 ~keys_a ~keys_b ~s0:500_000_000
      ~i:3 ~rel_lock:6
  in
  check_b "fresh copies are distinct" true (not (f1 == c1));
  check_b "shared and fresh are byte-identical" true
    (Tx.txid f1 = Tx.txid c1 && Tx.txid f1' = Tx.txid c1');
  let theta =
    [ { Tx.value = 600; spk = Tx.P2wpkh (String.make 20 'a') };
      { Tx.value = 400; spk = Tx.P2wpkh (String.make 20 'b') } ]
  in
  check_b "split body shared" true
    (Txs.gen_split ~theta ~s0:500_000_000 ~i:2
    == Txs.gen_split ~theta ~s0:500_000_000 ~i:2);
  check_b "split fresh distinct but equal" true
    (let a = Txs.gen_split_fresh ~theta ~s0:500_000_000 ~i:2 in
     let b = Txs.gen_split ~theta ~s0:500_000_000 ~i:2 in
     (not (a == b)) && Tx.txid a = Tx.txid b);
  let rv () =
    Txs.gen_revoke ~pk_a:keys_a.Keys.main_pk ~pk_b:keys_b.Keys.main_pk
      ~cash:1_000 ~s0:500_000_000 ~revoked:2
  in
  let r1, r1' = rv () and r2, r2' = rv () in
  check_b "revocation pair shared" true (r1 == r2 && r1' == r2');
  let rf, rf' =
    Txs.gen_revoke_fresh ~pk_a:keys_a.Keys.main_pk ~pk_b:keys_b.Keys.main_pk
      ~cash:1_000 ~s0:500_000_000 ~revoked:2
  in
  check_b "fresh revocations equal the shared ones" true
    (Tx.txid rf = Tx.txid r1 && Tx.txid rf' = Tx.txid r1')

(* ---------------- retained-words regression bound ---------------- *)

(* Measured after this PR: ~3.3k words/channel at N=1k (parties +
   packed tower + compacted ledger + indexes). The bound is ~2x
   headroom — it exists to catch a regression that re-boxes retained
   state (the boxed tower alone was worth ~1k words/channel, an
   un-compacted accepted log several hundred more), not to pin the
   exact figure across allocator versions. *)
let retained_words_bound = 7_000.

let test_retained_words_per_channel () =
  let s = Daric_analysis.Memprobe.run ~channels:1_000 ~updates:2 () in
  check_b
    (Printf.sprintf "retained words/channel %.1f under bound %.0f"
       s.Daric_analysis.Memprobe.retained_words_per_channel
       retained_words_bound)
    true
    (s.Daric_analysis.Memprobe.retained_words_per_channel
    < retained_words_bound);
  check_b "tower arena carries the records" true
    (s.Daric_analysis.Memprobe.tower_arena_bytes > 0);
  check_b "accepted log compacted" true
    (s.Daric_analysis.Memprobe.ledger_compacted > 0);
  check_b "interner shared payloads" true
    (s.Daric_analysis.Memprobe.intern_saved_bytes > 0)

let () =
  Alcotest.run "daric-mem"
    [ ( "engine",
        [ Alcotest.test_case "arena store/replace/free/reuse" `Quick test_arena;
          Alcotest.test_case "interning" `Quick test_intern;
          Alcotest.test_case "directed arena-vs-boxed trace" `Quick
            test_directed_trace;
          Alcotest.test_case "churn reclaims arena slots" `Quick
            test_churn_reclaims;
          Alcotest.test_case "body sharing differential" `Slow
            test_body_sharing_differential;
          Alcotest.test_case "body sharing is physical" `Quick
            test_body_sharing_physical;
          Alcotest.test_case "retained words per channel at N=1k" `Slow
            test_retained_words_per_channel ] );
      ( "fuzz",
        [ QCheck_alcotest.to_alcotest fuzz_arena_vs_boxed ] ) ]
