(* End-to-end tests of the Daric protocol over the simulated ledger:
   create, update, collaborative close, non-collaborative close, and
   the punish path against a dishonest party replaying an old state. *)

module Tx = Daric_tx.Tx
module Ledger = Daric_chain.Ledger
module Party = Daric_core.Party
module Driver = Daric_core.Driver
module Keys = Daric_core.Keys
module Txs = Daric_core.Txs
module Watchtower = Daric_core.Watchtower

let check = Alcotest.(check bool)

type session = {
  d : Driver.t;
  alice : Party.t;
  bob : Party.t;
}

let make_session ?(delta = 1) ?(seed = 7) () : session =
  let d = Driver.create ~delta ~seed () in
  let alice = Party.create ~pid:"alice" ~seed:(seed + 1) () in
  let bob = Party.create ~pid:"bob" ~seed:(seed + 2) () in
  Driver.add_party d alice;
  Driver.add_party d bob;
  { d; alice; bob }

let open_ok ?(bal_a = 60_000) ?(bal_b = 40_000) ?(rel_lock = 3) (s : session)
    ~(id : string) : unit =
  Driver.open_channel s.d ~id ~alice:s.alice ~bob:s.bob ~bal_a ~bal_b ~rel_lock
    ();
  check "channel becomes operational" true
    (Driver.run_until_operational s.d ~id ~alice:s.alice ~bob:s.bob)

let state (s : session) ~bal_a ~bal_b ~id : Tx.output list =
  let c = Party.chan_exn s.alice id in
  let pk_a, pk_b = Party.main_pks c in
  Txs.balance_state ~pk_a ~pk_b ~bal_a ~bal_b

let update_ok (s : session) ~id ~bal_a ~bal_b : unit =
  let theta = state s ~bal_a ~bal_b ~id in
  check "update completes" true
    (Driver.update_channel s.d ~id ~initiator:s.alice ~responder:s.bob ~theta)

(* ------------------------------------------------------------------ *)

let test_create () =
  let s = make_session () in
  open_ok s ~id:"chan1";
  let c = Party.chan_exn s.alice "chan1" in
  check "state number 0" true (c.Party.sn = 0);
  check "funding on chain" true
    (Ledger.is_unspent (Driver.ledger s.d) (Tx.outpoint_of (Option.get c.Party.fund) 0));
  (* Both parties hold the same split transaction body. *)
  let cb = Party.chan_exn s.bob "chan1" in
  let sa = (Option.get c.Party.split).Party.split_body in
  let sb = (Option.get cb.Party.split).Party.split_body in
  check "identical split bodies" true (Tx.txid sa = Tx.txid sb)

let test_update () =
  let s = make_session () in
  open_ok s ~id:"chan1";
  update_ok s ~id:"chan1" ~bal_a:50_000 ~bal_b:50_000;
  let ca = Party.chan_exn s.alice "chan1" in
  let cb = Party.chan_exn s.bob "chan1" in
  check "sn advanced to 1 on both sides" true (ca.Party.sn = 1 && cb.Party.sn = 1);
  check "flags reset" true (ca.Party.flag = 1 && cb.Party.flag = 1);
  check "revocation signatures stored" true
    (ca.Party.rev_sig_theirs <> None && cb.Party.rev_sig_theirs <> None)

let test_many_updates () =
  let s = make_session () in
  open_ok s ~id:"chan1";
  for k = 1 to 10 do
    update_ok s ~id:"chan1" ~bal_a:(60_000 - (1000 * k)) ~bal_b:(40_000 + (1000 * k))
  done;
  let ca = Party.chan_exn s.alice "chan1" in
  check "sn = 10" true (ca.Party.sn = 10)

let test_collaborative_close () =
  let s = make_session () in
  open_ok s ~id:"chan1";
  update_ok s ~id:"chan1" ~bal_a:10_000 ~bal_b:90_000;
  Party.request_close s.alice (Driver.ctx s.d "alice") ~id:"chan1";
  Driver.run s.d 10;
  check "alice saw CLOSED" true
    (Driver.saw_event s.alice (function Party.Closed _ -> true | _ -> false));
  check "bob saw CLOSED" true
    (Driver.saw_event s.bob (function Party.Closed _ -> true | _ -> false));
  (* The final state must sit on chain: one UTXO of 10k for A, 90k for B. *)
  let c = Party.chan_exn s.alice "chan1" in
  let fund_op = Tx.outpoint_of (Option.get c.Party.fund) 0 in
  let spender = Option.get (Ledger.spender_of (Driver.ledger s.d) fund_op) in
  check "fin split pays the last state" true
    (List.map (fun (o : Tx.output) -> o.value) spender.Tx.outputs
    = [ 10_000; 90_000 ])

let test_non_collaborative_close () =
  let s = make_session () in
  open_ok s ~id:"chan1" ~rel_lock:3;
  update_ok s ~id:"chan1" ~bal_a:30_000 ~bal_b:70_000;
  (* Bob goes silent; Alice times out on the close request and
     force-closes; after T rounds her split lands. *)
  Driver.corrupt s.d "bob";
  Party.request_close s.alice (Driver.ctx s.d "alice") ~id:"chan1";
  Driver.run s.d 20;
  check "alice force-closed" true
    (Driver.saw_event s.alice (function Party.Force_closed _ -> true | _ -> false));
  check "alice saw CLOSED" true
    (Driver.saw_event s.alice (function Party.Closed _ -> true | _ -> false));
  let c = Party.chan_exn s.alice "chan1" in
  let fund_op = Tx.outpoint_of (Option.get c.Party.fund) 0 in
  let commit = Option.get (Ledger.spender_of (Driver.ledger s.d) fund_op) in
  let split =
    Option.get (Ledger.spender_of (Driver.ledger s.d) (Tx.outpoint_of commit 0))
  in
  check "split pays the latest state" true
    (List.map (fun (o : Tx.output) -> o.value) split.Tx.outputs
    = [ 30_000; 70_000 ])

(* A dishonest party publishes a revoked commit; the honest counter-party
   punishes and takes all channel funds (Section 4.4 / Fig 3). *)
let test_punish_old_state () =
  let s = make_session () in
  open_ok s ~id:"chan1";
  (* The adversary (Bob) snapshots his state-0 commit before updating. *)
  let cb = Party.chan_exn s.bob "chan1" in
  let old_commit = Option.get cb.Party.commit_mine in
  update_ok s ~id:"chan1" ~bal_a:90_000 ~bal_b:10_000;
  update_ok s ~id:"chan1" ~bal_a:95_000 ~bal_b:5_000;
  (* Bob turns dishonest and replays state 0 (where he had 40k). *)
  Driver.corrupt s.d "bob";
  Driver.adversary_post s.d old_commit;
  Driver.run s.d 10;
  check "alice saw PUNISHED" true
    (Driver.saw_event s.alice (function Party.Punished _ -> true | _ -> false));
  (* Alice's revocation transaction took the full 100k. *)
  let ca = Party.chan_exn s.alice "chan1" in
  let rv = Option.get ca.Party.punish_posted in
  check "revocation pays full capacity to alice" true
    (Tx.total_output_value rv = 100_000);
  check "revocation on chain" true
    (Ledger.is_unspent (Driver.ledger s.d) (Tx.outpoint_of rv 0))

(* The punishment must land before the cheater can use the split path:
   the split branch is blocked by T, the revocation branch is instant. *)
let test_punish_beats_split () =
  let s = make_session ~delta:2 () in
  open_ok s ~id:"chan1" ~rel_lock:5;
  let cb = Party.chan_exn s.bob "chan1" in
  let old_commit = Option.get cb.Party.commit_mine in
  let old_split = Option.get cb.Party.split in
  update_ok s ~id:"chan1" ~bal_a:90_000 ~bal_b:10_000;
  Driver.corrupt s.d "bob";
  Driver.adversary_post s.d old_commit;
  (* Bob tries to settle the old state immediately with its split —
     the CSV delay T makes the attempt invalid while the revocation
     flies through. *)
  Driver.step s.d;
  let commit_op = Tx.outpoint_of old_commit 0 in
  let script =
    Daric_core.Txs.commit_script_of ~role:Keys.Bob
      ~keys_a:(fst (Party.keys_ab cb)) ~keys_b:(snd (Party.keys_ab cb))
      ~s0:cb.Party.cfg.s0 ~i:0 ~rel_lock:cb.Party.cfg.rel_lock
  in
  let split_attempt =
    Txs.complete_split old_split.Party.split_body ~commit_outpoint:commit_op
      ~commit_script:script ~sig_a:old_split.Party.split_sig_a
      ~sig_b:old_split.Party.split_sig_b
  in
  Driver.adversary_post s.d split_attempt;
  Driver.run s.d 12;
  check "alice punished despite split race" true
    (Driver.saw_event s.alice (function Party.Punished _ -> true | _ -> false))

(* Old revocation/split transactions cannot spend the latest commit:
   state ordering via nLockTime vs the CLTV in the commit script. *)
let test_state_ordering () =
  let s = make_session () in
  open_ok s ~id:"chan1";
  let cb = Party.chan_exn s.bob "chan1" in
  let old_split = Option.get cb.Party.split in
  update_ok s ~id:"chan1" ~bal_a:90_000 ~bal_b:10_000;
  (* Alice closes non-collaboratively with the latest commit. *)
  Driver.corrupt s.d "bob";
  let ca = Party.chan_exn s.alice "chan1" in
  let latest_commit = Option.get ca.Party.commit_mine in
  Driver.adversary_post s.d latest_commit;
  Driver.step s.d;
  (* Bob tries to spend it with the REVOKED state-0 split. *)
  let script =
    Daric_core.Txs.commit_script_of ~role:Keys.Alice
      ~keys_a:(fst (Party.keys_ab cb)) ~keys_b:(snd (Party.keys_ab cb))
      ~s0:cb.Party.cfg.s0 ~i:1 ~rel_lock:cb.Party.cfg.rel_lock
  in
  let stale =
    Txs.complete_split old_split.Party.split_body
      ~commit_outpoint:(Tx.outpoint_of latest_commit 0) ~commit_script:script
      ~sig_a:old_split.Party.split_sig_a ~sig_b:old_split.Party.split_sig_b
  in
  Driver.adversary_post s.d stale;
  Driver.run s.d 10;
  (* The commit output must have been claimed by the CURRENT split
     (posted by honest Alice), not the stale one. *)
  let spender =
    Option.get
      (Ledger.spender_of (Driver.ledger s.d) (Tx.outpoint_of latest_commit 0))
  in
  check "latest split won" true
    (List.map (fun (o : Tx.output) -> o.value) spender.Tx.outputs
    = [ 90_000; 10_000 ])

(* A watchtower punishes on behalf of an offline client. *)
let test_watchtower_punishes () =
  let s = make_session () in
  open_ok s ~id:"chan1";
  let cb = Party.chan_exn s.bob "chan1" in
  let old_commit = Option.get cb.Party.commit_mine in
  update_ok s ~id:"chan1" ~bal_a:80_000 ~bal_b:20_000;
  let wt = Watchtower.create ~wid:"wt1" () in
  (match Watchtower.record_for s.alice ~id:"chan1" with
  | Some r -> assert (Watchtower.watch wt r)
  | None -> Alcotest.fail "no watchtower record after update");
  Driver.add_watchtower s.d wt;
  (* Both Alice (offline) and Bob (dishonest) stop acting. *)
  Driver.corrupt s.d "alice";
  Driver.corrupt s.d "bob";
  Driver.adversary_post s.d old_commit;
  Driver.run s.d 10;
  check "watchtower reacted" true (Watchtower.punished wt = [ "chan1" ]);
  (* the revocation output belongs to Alice's main key *)
  let commit_spender =
    Option.get
      (Ledger.spender_of (Driver.ledger s.d) (Tx.outpoint_of old_commit 0))
  in
  check "full funds to client" true
    (Tx.total_output_value commit_spender = 100_000)

(* The watchtower must NOT punish the latest commit. *)
let test_watchtower_ignores_latest () =
  let s = make_session () in
  open_ok s ~id:"chan1";
  update_ok s ~id:"chan1" ~bal_a:80_000 ~bal_b:20_000;
  let wt = Watchtower.create ~wid:"wt1" () in
  (match Watchtower.record_for s.alice ~id:"chan1" with
  | Some r -> assert (Watchtower.watch wt r)
  | None -> Alcotest.fail "no record");
  Driver.add_watchtower s.d wt;
  Driver.corrupt s.d "alice";
  let cb = Party.chan_exn s.bob "chan1" in
  let latest = Option.get cb.Party.commit_mine in
  Driver.corrupt s.d "bob";
  Driver.adversary_post s.d latest;
  Driver.run s.d 10;
  check "watchtower stayed quiet" true (Watchtower.punished wt = [])

(* Update abort at the SETUP' step: the responder stops cooperating
   after receiving the initiator's commit signature; the initiator
   force-closes with the newest enforceable state. *)
let test_force_close_mid_update () =
  let s = make_session () in
  open_ok s ~id:"chan1";
  update_ok s ~id:"chan1" ~bal_a:55_000 ~bal_b:45_000;
  let theta = state s ~bal_a:20_000 ~bal_b:80_000 ~id:"chan1" in
  Party.request_update s.alice (Driver.ctx s.d "alice") ~id:"chan1" ~theta ();
  (* Let the updateReq and updateInfo flow, then kill Bob before he
     answers updateComP. *)
  Driver.run s.d 2;
  Driver.corrupt s.d "bob";
  Driver.run s.d 25;
  check "alice force-closed" true
    (Driver.saw_event s.alice (function Party.Force_closed _ -> true | _ -> false));
  check "alice eventually closed" true
    (Driver.saw_event s.alice (function Party.Closed _ -> true | _ -> false))

(* Consensus on update: the responder's environment refuses; the state
   stays unchanged with no on-chain interaction. *)
let test_update_rejected () =
  let d = Driver.create ~delta:1 ~seed:3 () in
  let env_reject =
    { Party.accept_all with
      Party.approve_update = (fun ~id:_ ~theta:_ -> false) }
  in
  let alice = Party.create ~pid:"alice" ~seed:4 () in
  let bob = Party.create ~env:env_reject ~pid:"bob" ~seed:5 () in
  Driver.add_party d alice;
  Driver.add_party d bob;
  Driver.open_channel d ~id:"chan1" ~alice ~bob ~bal_a:60_000 ~bal_b:40_000 ();
  Alcotest.(check bool) "operational" true
    (Driver.run_until_operational d ~id:"chan1" ~alice ~bob);
  let c = Party.chan_exn alice "chan1" in
  let pk_a, pk_b = Party.main_pks c in
  let theta = Txs.balance_state ~pk_a ~pk_b ~bal_a:1_000 ~bal_b:99_000 in
  Party.request_update alice (Driver.ctx d "alice") ~id:"chan1" ~theta ();
  Driver.run d 8;
  check "alice reverted to operational" true
    (Driver.channel_operational alice ~id:"chan1");
  check "state unchanged" true ((Party.chan_exn alice "chan1").Party.sn = 0);
  check "no force close" true
    (not (Driver.saw_event alice (function Party.Force_closed _ -> true | _ -> false)))

(* Optimistic update: honest parties never touch the ledger. *)
let test_optimistic_update_no_chain () =
  let s = make_session () in
  open_ok s ~id:"chan1";
  let txs_before = List.length (Ledger.accepted (Driver.ledger s.d)) in
  for k = 1 to 5 do
    update_ok s ~id:"chan1" ~bal_a:(60_000 - k) ~bal_b:(40_000 + k)
  done;
  let txs_after = List.length (Ledger.accepted (Driver.ledger s.d)) in
  check "no ledger interaction during updates" true (txs_before = txs_after)

(* Both parties request an update in the same round: the paper's
   wrapper drops updateReq while another update is in flight, so both
   attempts fizzle and the channel stays consistent. *)
let test_concurrent_update_requests () =
  let s = make_session () in
  open_ok s ~id:"chan1";
  let theta_a = state s ~bal_a:70_000 ~bal_b:30_000 ~id:"chan1" in
  let theta_b = state s ~bal_a:30_000 ~bal_b:70_000 ~id:"chan1" in
  Party.request_update s.alice (Driver.ctx s.d "alice") ~id:"chan1"
    ~theta:theta_a ();
  Party.request_update s.bob (Driver.ctx s.d "bob") ~id:"chan1" ~theta:theta_b ();
  Driver.run s.d 12;
  let ca = Party.chan_exn s.alice "chan1" in
  let cb = Party.chan_exn s.bob "chan1" in
  check "both back to operational" true
    (ca.Party.phase = Party.Operational && cb.Party.phase = Party.Operational);
  check "no state divergence" true
    (ca.Party.sn = cb.Party.sn && Party.outputs_equal ca.Party.st cb.Party.st);
  (* the channel still works afterwards *)
  update_ok s ~id:"chan1" ~bal_a:45_000 ~bal_b:55_000

(* One party runs several independent channels concurrently. *)
let test_multiple_channels_per_party () =
  let d = Driver.create ~delta:1 ~seed:17 () in
  let hub = Party.create ~pid:"hub" ~seed:1 () in
  let p1 = Party.create ~pid:"p1" ~seed:2 () in
  let p2 = Party.create ~pid:"p2" ~seed:3 () in
  let p3 = Party.create ~pid:"p3" ~seed:4 () in
  List.iter (Driver.add_party d) [ hub; p1; p2; p3 ];
  List.iteri
    (fun i peer ->
      Driver.open_channel d ~id:(Fmt.str "hub%d" i) ~alice:hub ~bob:peer
        ~bal_a:50_000 ~bal_b:50_000 ())
    [ p1; p2; p3 ];
  Driver.run d 12;
  List.iteri
    (fun i peer ->
      let id = Fmt.str "hub%d" i in
      check (id ^ " operational") true
        (Driver.channel_operational hub ~id
        && Driver.channel_operational peer ~id))
    [ p1; p2; p3 ];
  (* update them in interleaved fashion *)
  List.iteri
    (fun i peer ->
      let id = Fmt.str "hub%d" i in
      let c = Party.chan_exn hub id in
      let pk_a, pk_b = Party.main_pks c in
      let theta =
        Txs.balance_state ~pk_a ~pk_b
          ~bal_a:(40_000 - (1_000 * i))
          ~bal_b:(60_000 + (1_000 * i))
      in
      check (id ^ " updates") true
        (Driver.update_channel d ~id ~initiator:hub ~responder:peer ~theta))
    [ p1; p2; p3 ];
  (* one peer cheats; only that channel is affected *)
  let cheat_commit = Option.get (Party.chan_exn p2 "hub1").Party.commit_mine in
  let c1 = Party.chan_exn hub "hub1" in
  let pk_a, pk_b = Party.main_pks c1 in
  let theta = Txs.balance_state ~pk_a ~pk_b ~bal_a:10_000 ~bal_b:90_000 in
  check "hub1 second update" true
    (Driver.update_channel d ~id:"hub1" ~initiator:hub ~responder:p2 ~theta);
  Driver.corrupt d "p2";
  Driver.adversary_post d cheat_commit;
  Driver.run d 10;
  check "hub punished on hub1" true
    (Driver.saw_event hub (function Party.Punished "hub1" -> true | _ -> false));
  check "hub0 untouched" true (Driver.channel_operational hub ~id:"hub0");
  check "hub2 untouched" true (Driver.channel_operational hub ~id:"hub2")

(* The responder can also be the one to notice fraud while an update is
   in flight (flag = 2): the punish daemon covers both active states. *)
let test_punish_during_pending_update () =
  let s = make_session () in
  open_ok s ~id:"chan1";
  let old_commit = Option.get (Party.chan_exn s.bob "chan1").Party.commit_mine in
  update_ok s ~id:"chan1" ~bal_a:80_000 ~bal_b:20_000;
  (* start another update but freeze it mid-flight *)
  let theta = state s ~bal_a:75_000 ~bal_b:25_000 ~id:"chan1" in
  Party.request_update s.alice (Driver.ctx s.d "alice") ~id:"chan1" ~theta ();
  Driver.run s.d 2 (* updateReq delivered, updateInfo sent *);
  (* now bob turns dishonest and posts the state-0 commit *)
  Driver.corrupt s.d "bob";
  Driver.adversary_post s.d old_commit;
  Driver.run s.d 12;
  check "alice punished despite pending update" true
    (Driver.saw_event s.alice (function Party.Punished _ -> true | _ -> false))

(* Watchtower coverage: ALL guarded channels are breached in the same
   round; the tower punishes every one within the dispute window (no
   per-channel collateral limits in Daric, unlike FPPW/Cerberus). *)
let test_watchtower_mass_breach () =
  let d = Driver.create ~delta:1 ~seed:73 () in
  let wt = Watchtower.create ~wid:"tower" () in
  Driver.add_watchtower d wt;
  let n = 6 in
  let chans =
    List.init n (fun i ->
        let a = Party.create ~pid:(Fmt.str "a%d" i) ~seed:(300 + i) () in
        let b = Party.create ~pid:(Fmt.str "b%d" i) ~seed:(400 + i) () in
        Driver.add_party d a;
        Driver.add_party d b;
        let id = Fmt.str "w%d" i in
        Driver.open_channel d ~id ~alice:a ~bob:b ~bal_a:50_000 ~bal_b:50_000 ();
        assert (Driver.run_until_operational d ~id ~alice:a ~bob:b);
        let snapshot = Option.get (Party.chan_exn b id).Party.commit_mine in
        let c = Party.chan_exn a id in
        let pk_a, pk_b = Party.main_pks c in
        let theta = Txs.balance_state ~pk_a ~pk_b ~bal_a:70_000 ~bal_b:30_000 in
        assert (Driver.update_channel d ~id ~initiator:a ~responder:b ~theta);
        (match Watchtower.record_for a ~id with
        | Some r -> assert (Watchtower.watch wt r)
        | None -> Alcotest.fail "no record");
        Driver.corrupt d a.Party.pid;
        Driver.corrupt d b.Party.pid;
        (id, snapshot))
  in
  (* every cheater fires in the same round *)
  List.iter (fun (_, snap) -> Driver.adversary_post d snap) chans;
  Driver.run d 8;
  check "tower punished all channels simultaneously" true
    (List.length (Watchtower.punished wt) = n)

(* Closure works symmetrically from the Bob side. *)
let test_close_initiated_by_bob () =
  let s = make_session ~seed:41 () in
  open_ok s ~id:"chan1";
  update_ok s ~id:"chan1" ~bal_a:25_000 ~bal_b:75_000;
  Party.request_close s.bob (Driver.ctx s.d "bob") ~id:"chan1";
  Driver.run s.d 10;
  check "both closed" true
    (Driver.saw_event s.alice (function Party.Closed _ -> true | _ -> false)
    && Driver.saw_event s.bob (function Party.Closed _ -> true | _ -> false));
  let c = Party.chan_exn s.bob "chan1" in
  let spender =
    Option.get
      (Ledger.spender_of (Driver.ledger s.d)
         (Tx.outpoint_of (Option.get c.Party.fund) 0))
  in
  check "final state on chain" true
    (List.map (fun (o : Tx.output) -> o.value) spender.Tx.outputs
    = [ 25_000; 75_000 ])

(* The counter-party's environment refuses the collaborative close:
   the requester times out and force-closes with the same final
   balances (the ideal functionality's "Q disagreed" branch). *)
let test_close_refused_forces_unilateral () =
  let d = Driver.create ~delta:1 ~seed:43 () in
  let env_refuse =
    { Party.accept_all with Party.approve_close = (fun ~id:_ -> false) }
  in
  let alice = Party.create ~pid:"alice" ~seed:1 () in
  let bob = Party.create ~env:env_refuse ~pid:"bob" ~seed:2 () in
  Driver.add_party d alice;
  Driver.add_party d bob;
  Driver.open_channel d ~id:"c" ~alice ~bob ~bal_a:60_000 ~bal_b:40_000 ();
  assert (Driver.run_until_operational d ~id:"c" ~alice ~bob);
  Party.request_close alice (Driver.ctx d "alice") ~id:"c";
  Driver.run d 20;
  check "alice force-closed" true
    (Driver.saw_event alice (function Party.Force_closed _ -> true | _ -> false));
  check "alice closed with latest state" true
    (Driver.saw_event alice (function Party.Closed _ -> true | _ -> false));
  let c = Party.chan_exn alice "c" in
  let commit =
    Option.get
      (Ledger.spender_of (Driver.ledger d)
         (Tx.outpoint_of (Option.get c.Party.fund) 0))
  in
  let split =
    Option.get (Ledger.spender_of (Driver.ledger d) (Tx.outpoint_of commit 0))
  in
  check "split pays initial state" true
    (List.map (fun (o : Tx.output) -> o.value) split.Tx.outputs
    = [ 60_000; 40_000 ])

(* Bob can also be the update initiator (role symmetry of the update
   sub-protocol). *)
let test_update_initiated_by_bob () =
  let s = make_session ~seed:47 () in
  open_ok s ~id:"chan1";
  let theta = state s ~bal_a:45_000 ~bal_b:55_000 ~id:"chan1" in
  check "bob-initiated update completes" true
    (Driver.update_channel s.d ~id:"chan1" ~initiator:s.bob ~responder:s.alice
       ~theta);
  let ca = Party.chan_exn s.alice "chan1" in
  check "state agreed" true
    (ca.Party.sn = 1 && Party.outputs_equal ca.Party.st theta);
  (* and alice can still punish a later replay by bob *)
  let cb = Party.chan_exn s.bob "chan1" in
  let old_commit = Option.get cb.Party.commit_mine in
  update_ok s ~id:"chan1" ~bal_a:80_000 ~bal_b:20_000;
  Driver.corrupt s.d "bob";
  Driver.adversary_post s.d old_commit;
  Driver.run s.d 10;
  check "punish works after bob-initiated updates" true
    (Driver.saw_event s.alice (function Party.Punished _ -> true | _ -> false))

let () =
  Alcotest.run "daric-protocol"
    [ ( "lifecycle",
        [ Alcotest.test_case "create" `Quick test_create;
          Alcotest.test_case "update" `Quick test_update;
          Alcotest.test_case "many updates" `Quick test_many_updates;
          Alcotest.test_case "collaborative close" `Quick test_collaborative_close;
          Alcotest.test_case "non-collaborative close" `Quick
            test_non_collaborative_close ] );
      ( "security",
        [ Alcotest.test_case "punish old state" `Quick test_punish_old_state;
          Alcotest.test_case "punish beats split" `Quick test_punish_beats_split;
          Alcotest.test_case "state ordering" `Quick test_state_ordering;
          Alcotest.test_case "watchtower punishes" `Quick test_watchtower_punishes;
          Alcotest.test_case "watchtower ignores latest" `Quick
            test_watchtower_ignores_latest;
          Alcotest.test_case "force close mid-update" `Quick
            test_force_close_mid_update ] );
      ( "consensus",
        [ Alcotest.test_case "update rejected" `Quick test_update_rejected;
          Alcotest.test_case "optimistic update off-chain" `Quick
            test_optimistic_update_no_chain ] );
      ( "concurrency",
        [ Alcotest.test_case "concurrent update requests" `Quick
            test_concurrent_update_requests;
          Alcotest.test_case "multiple channels per party" `Quick
            test_multiple_channels_per_party;
          Alcotest.test_case "punish during pending update" `Quick
            test_punish_during_pending_update;
          Alcotest.test_case "watchtower mass breach" `Quick
            test_watchtower_mass_breach ] );
      ( "symmetry",
        [ Alcotest.test_case "close initiated by bob" `Quick
            test_close_initiated_by_bob;
          Alcotest.test_case "close refused -> unilateral" `Quick
            test_close_refused_forces_unilateral;
          Alcotest.test_case "update initiated by bob" `Quick
            test_update_initiated_by_bob ] ) ]
