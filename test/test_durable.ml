(* Durability tests.

   The central differential: a durable tower killed at EVERY round
   boundary of a 100-round fraud trace and recovered from its store
   must end with exactly the punished set, guarded set, storage bytes
   and on-chain event stream of the tower that never crashed. Plus:
   N-tower replication with any R-1 replicas crashed still punishes
   every fraud, the tower snapshot codec round-trips, a file-backed
   store survives a real process-level drop of the handle, and the WAL
   framing is fuzzed — random record sequences round-trip, and any
   single-byte corruption or tail truncation yields an error or a
   strict prefix, never a mis-replay. *)

module Tx = Daric_tx.Tx
module Ledger = Daric_chain.Ledger
module Watchtower = Daric_core.Watchtower
module Persist = Daric_core.Persist
module Durable = Daric_core.Durable
module Towerset = Daric_core.Towerset
module Wal = Daric_util.Wal
module I = Daric_schemes.Scheme_intf
module DS = Daric_schemes.Daric_scheme

let check_b = Alcotest.(check bool)
let check_i = Alcotest.(check int)

let fail_persist e = Alcotest.fail (Persist.error_to_string e)

(* ---- world builder: N channels on one ledger, all updated ---- *)

let build_world ~channels ~updates ~seed =
  let env = I.make_env ~delta:1 ~seed () in
  let chans =
    Array.init channels (fun k ->
        let cfg =
          { I.default_config with
            chan_id = Printf.sprintf "c%d" k;
            party_seed = 1000 + (2 * k);
            bal_a = 500_000 + k;
            bal_b = 500_000 - k }
        in
        match DS.Scheme.open_channel env cfg with
        | Ok s -> s
        | Error e -> failwith (I.error_to_string e))
  in
  Array.iteri
    (fun k s ->
      for u = 1 to updates do
        match
          DS.Scheme.update s ~bal_a:(500_000 + k + (u * 17))
            ~bal_b:(500_000 - k - (u * 17))
        with
        | Ok () -> ()
        | Error e -> failwith (I.error_to_string e)
      done)
    chans;
  (env, chans)

(* ---- crash-at-every-round-boundary differential ---- *)

(* One 100-round trace: six frauds spread over the run, one channel
   collaboratively un-watched halfway. [crash] drops the tower's RAM
   after every round and recovers it from the store before the next.
   Returns every observable the acceptance cares about. *)
let run_trace ~crash () =
  let channels = 12 and updates = 2 and rounds = 100 in
  let frauds = [ (10, 6); (25, 7); (40, 8); (55, 9); (70, 10); (85, 11) ] in
  let env, chans = build_world ~channels ~updates ~seed:42 in
  let store = Durable.memory_store () in
  let t = ref (Durable.create ~snapshot_every:4 ~wid:"t" store) in
  Array.iter
    (fun s ->
      match DS.watch_record s with
      | Some r ->
          if not (Durable.watch !t r) then
            Alcotest.fail "tower rejected a valid record"
      | None -> Alcotest.fail "no record after update")
    chans;
  let post tx = Ledger.post env.ledger tx ~delay:0 in
  let max_replayed = ref 0 in
  let recoveries_with_snapshot = ref 0 in
  for round = 1 to rounds do
    (match List.assoc_opt round frauds with
    | Some k -> DS.publish_revoked chans.(k)
    | None -> ());
    if round = 50 then Durable.unwatch !t ~channel_id:"c0";
    I.settle env 1;
    Durable.end_of_round !t ~round:(Ledger.height env.ledger)
      ~ledger:env.ledger ~post;
    (* fixed-round snapshots (the cadence counter restarts with every
       recovered handle, so the crash run would otherwise never reach
       it): recoveries after round 30 exercise snapshot + WAL replay *)
    if round = 30 || round = 60 then Durable.snapshot !t;
    if crash then begin
      match Durable.recover ~snapshot_every:4 ~wid:"t" store with
      | Ok r ->
          t := r.Durable.t;
          max_replayed := max !max_replayed r.Durable.replayed;
          if r.Durable.had_snapshot then incr recoveries_with_snapshot
      | Error e -> fail_persist e
    end
  done;
  (* let the last revocation confirm, then settle the punished list *)
  I.settle env 1;
  Durable.end_of_round !t ~round:(Ledger.height env.ledger) ~ledger:env.ledger
    ~post;
  let tw = Durable.tower !t in
  let trace =
    ( Watchtower.punished tw,
      Watchtower.guarded_count tw,
      Watchtower.storage_bytes tw,
      Ledger.height env.ledger,
      List.map (fun (r, tx) -> (r, Tx.txid tx)) (Ledger.accepted env.ledger) )
  in
  (trace, !max_replayed, !recoveries_with_snapshot)

let test_crash_every_round_differential () =
  let reference, _, _ = run_trace ~crash:false () in
  let crashed, max_replayed, with_snapshot = run_trace ~crash:true () in
  let punished, guarded, bytes, height, _ = reference in
  check_i "six frauds punished" 6 (List.length punished);
  (* punish reclaims a channel's record, so the 6 punished channels no
     longer count as guarded, nor does unwatched c0 *)
  check_i "c0 unwatched, punished reclaimed, rest guarded" (12 - 1 - 6) guarded;
  check_b "crashed trace identical to uninterrupted" true
    (crashed = reference);
  check_b "recovery actually replayed WAL records" true (max_replayed > 0);
  check_b "recovery actually loaded a snapshot" true (with_snapshot > 0);
  ignore (bytes, height)

(* ---- N-tower replication: any one honest replica suffices ---- *)

let run_replicated ~live () =
  let channels = 8 and rounds = 20 in
  let frauds = [ (5, 4); (8, 5); (11, 6); (14, 7) ] in
  let env, chans = build_world ~channels ~updates:1 ~seed:17 in
  let faults ~round:_ ~replica = if replica = live then `Up else `Down in
  let ts = Towerset.create ~snapshot_every:4 ~faults ~wid:"ts" 3 in
  let round0 = Ledger.height env.ledger in
  Array.iter
    (fun s ->
      match DS.watch_record s with
      | Some r ->
          if not (Towerset.watch ts ~round:round0 r) then
            Alcotest.fail "every replica rejected a valid record"
      | None -> Alcotest.fail "no record after update")
    chans;
  let post tx = Ledger.post env.ledger tx ~delay:0 in
  for round = 1 to rounds do
    (match List.assoc_opt round frauds with
    | Some k -> DS.publish_revoked chans.(k)
    | None -> ());
    I.settle env 1;
    Towerset.end_of_round ts ~round:(Ledger.height env.ledger)
      ~ledger:env.ledger ~post
  done;
  I.settle env 1;
  Towerset.end_of_round ts ~round:(Ledger.height env.ledger)
    ~ledger:env.ledger ~post;
  ts

let test_two_of_three_crashed () =
  (* whichever single replica survives, all frauds are punished *)
  List.iter
    (fun live ->
      let ts = run_replicated ~live () in
      check_i
        (Printf.sprintf "all frauds punished with only replica %d up" live)
        4
        (List.length (Towerset.punished ts));
      List.iter
        (fun (s : Towerset.score) ->
          if s.s_idx = live then begin
            check_b "survivor served every round" true (s.s_liveness = 1.0);
            check_i "survivor punished all" 4 s.s_punished
          end
          else begin
            check_i "crashed replica served nothing" 0 s.s_rounds_served;
            check_b "crashed replica is down" true (not s.s_alive)
          end)
        (Towerset.scorecard ts))
    [ 0; 1; 2 ]

(* ---- tower snapshot codec round-trips ---- *)

let test_tower_snapshot_roundtrip () =
  let ts = run_replicated ~live:0 () in
  match
    List.find_map
      (fun (s : Towerset.score) -> if s.s_alive then Some s.s_idx else None)
      (Towerset.scorecard ts)
  with
  | None -> Alcotest.fail "no live replica"
  | Some _ ->
      (* rebuild a plain tower through the codec and compare *)
      let env, chans = build_world ~channels:5 ~updates:1 ~seed:23 in
      let tw = Watchtower.create ~wid:"codec" () in
      Array.iter
        (fun s ->
          match DS.watch_record s with
          | Some r -> ignore (Watchtower.watch tw r)
          | None -> ())
        chans;
      DS.publish_revoked chans.(3);
      I.settle env 1;
      let post tx = Ledger.post env.ledger tx ~delay:0 in
      Watchtower.end_of_round tw ~round:(Ledger.height env.ledger)
        ~ledger:env.ledger ~post;
      I.settle env 1;
      Watchtower.end_of_round tw ~round:(Ledger.height env.ledger)
        ~ledger:env.ledger ~post;
      let blob = Persist.encode_tower tw in
      (match Persist.restore_tower blob with
      | Error e -> fail_persist e
      | Ok tw' ->
          check_b "wid" true (Watchtower.wid tw' = Watchtower.wid tw);
          check_i "guarded" (Watchtower.guarded_count tw)
            (Watchtower.guarded_count tw');
          check_b "punished" true
            (Watchtower.punished tw' = Watchtower.punished tw);
          check_i "cursor" (Watchtower.cursor tw) (Watchtower.cursor tw');
          check_i "storage bytes" (Watchtower.storage_bytes tw)
            (Watchtower.storage_bytes tw'));
      (* corrupted snapshots are rejected, not half-restored *)
      check_b "truncated snapshot rejected" true
        (Persist.restore_tower (String.sub blob 0 (String.length blob - 2))
        |> Result.is_error);
      check_b "padded snapshot rejected" true
        (Persist.restore_tower (blob ^ "x") |> Result.is_error)

(* ---- file-backed store: drop the handle, re-open from disk ---- *)

let test_file_store_recovery () =
  let path = Filename.temp_file "daric_tower" ".wal" in
  let env, chans = build_world ~channels:4 ~updates:1 ~seed:31 in
  let post tx = Ledger.post env.ledger tx ~delay:0 in
  let store = Durable.file_store path in
  let t = Durable.create ~snapshot_every:50 ~wid:"disk" store in
  Array.iter
    (fun s ->
      match DS.watch_record s with
      | Some r -> ignore (Durable.watch t r)
      | None -> ())
    chans;
  for round = 1 to 12 do
    if round = 6 then DS.publish_revoked chans.(2);
    I.settle env 1;
    Durable.end_of_round t ~round:(Ledger.height env.ledger) ~ledger:env.ledger
      ~post
  done;
  (* snapshot_every:50 means nothing snapshotted — recovery must come
     entirely from the on-disk WAL; drop the handle and re-open *)
  let store2 = Durable.file_store path in
  (match Durable.recover ~snapshot_every:50 ~wid:"disk" store2 with
  | Error e -> fail_persist e
  | Ok r ->
      check_b "no snapshot was taken" true (not r.Durable.had_snapshot);
      check_b "WAL records replayed from disk" true (r.Durable.replayed > 0);
      let tw = Durable.tower r.Durable.t in
      check_i "guarded restored from disk (punish reclaimed one)" 3
        (Watchtower.guarded_count tw);
      check_i "punishment restored from disk" 1
        (List.length (Watchtower.punished tw)));
  Sys.remove path;
  if Sys.file_exists (path ^ ".snap") then Sys.remove (path ^ ".snap")

(* ---- WAL framing fuzz ---- *)

let gen_records =
  QCheck.Gen.(
    list_size (int_range 1 24)
      (map2
         (fun kind payload -> { Wal.kind; payload })
         (int_range 0 255)
         (map Bytes.to_string (bytes_size (int_range 0 120)))))

let arb_records =
  QCheck.make gen_records
    ~print:(fun rs ->
      String.concat ";"
        (List.map
           (fun (r : Wal.record) ->
             Printf.sprintf "k%d/%dB" r.Wal.kind (String.length r.Wal.payload))
           rs))

let encode_log (records : Wal.record list) : string =
  let sink = Wal.Sink.memory () in
  (match Wal.attach sink with
  | Ok (w, [], Wal.Complete) ->
      List.iter (fun (r : Wal.record) -> Wal.append w ~kind:r.Wal.kind r.Wal.payload) records
  | Ok _ -> Alcotest.fail "fresh sink not empty"
  | Error e -> Alcotest.fail (Wal.error_to_string e));
  Wal.Sink.contents sink

let is_prefix ~(of_ : Wal.record list) (rs : Wal.record list) : bool =
  let rec go a b =
    match (a, b) with
    | [], _ -> true
    | x :: a', y :: b' -> x = y && go a' b'
    | _ :: _, [] -> false
  in
  go rs of_

let fuzz_roundtrip =
  QCheck.Test.make ~count:200 ~name:"wal roundtrip" arb_records (fun records ->
      match Wal.decode (encode_log records) with
      | Ok (rs, Wal.Complete) -> rs = records
      | _ -> false)

let fuzz_corruption =
  (* flipping any single byte of a complete log is detected: decode
     yields an error or a strict prefix, never a full mis-replay *)
  QCheck.Test.make ~count:300 ~name:"wal single-byte corruption"
    QCheck.(pair arb_records (pair small_nat small_nat))
    (fun (records, (pos_seed, delta_seed)) ->
      let log = encode_log records in
      QCheck.assume (String.length log > 0);
      let pos = pos_seed mod String.length log in
      let delta = 1 + (delta_seed mod 255) in
      let b = Bytes.of_string log in
      Bytes.set b pos
        (Char.chr ((Char.code (Bytes.get b pos) + delta) land 0xff));
      match Wal.decode (Bytes.to_string b) with
      | Error _ -> true
      | Ok (rs, _) ->
          List.length rs < List.length records && is_prefix ~of_:records rs)

let fuzz_truncation =
  (* cutting the log anywhere yields a clean prefix — torn tails are
     truncation damage, recoverable, and never read as corruption *)
  QCheck.Test.make ~count:300 ~name:"wal tail truncation"
    QCheck.(pair arb_records small_nat)
    (fun (records, cut_seed) ->
      let log = encode_log records in
      QCheck.assume (String.length log > 0);
      let cut = cut_seed mod String.length log in
      match Wal.decode (String.sub log 0 cut) with
      | Error _ -> false
      | Ok (rs, _) ->
          List.length rs < List.length records && is_prefix ~of_:records rs)

let fuzz_attach_truncates =
  (* attach over a torn sink truncates in place and stays appendable *)
  QCheck.Test.make ~count:100 ~name:"wal attach repairs torn tail"
    QCheck.(pair arb_records small_nat)
    (fun (records, cut_seed) ->
      let log = encode_log records in
      QCheck.assume (String.length log > 0);
      let cut = cut_seed mod String.length log in
      let sink = Wal.Sink.memory () in
      Wal.Sink.append sink (String.sub log 0 cut);
      match Wal.attach sink with
      | Error _ -> false
      | Ok (w, rs, _) ->
          Wal.append w ~kind:7 "after-repair";
          (match Wal.decode (Wal.Sink.contents sink) with
          | Ok (rs', Wal.Complete) ->
              rs' = rs @ [ { Wal.kind = 7; payload = "after-repair" } ]
          | _ -> false))

let () =
  Alcotest.run "daric-durable"
    [ ( "durable",
        [ Alcotest.test_case "crash at every round boundary" `Slow
            test_crash_every_round_differential;
          Alcotest.test_case "2 of 3 replicas crashed" `Quick
            test_two_of_three_crashed;
          Alcotest.test_case "tower snapshot roundtrip" `Quick
            test_tower_snapshot_roundtrip;
          Alcotest.test_case "file store recovery" `Quick
            test_file_store_recovery ] );
      ( "wal-fuzz",
        List.map QCheck_alcotest.to_alcotest
          [ fuzz_roundtrip; fuzz_corruption; fuzz_truncation;
            fuzz_attach_truncates ] ) ]
