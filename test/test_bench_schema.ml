(* Benchmark artifact validation: every committed BENCH_*.json must
   declare the schema its consumers (EXPERIMENTS.md tables, the bench
   refresh workflow, regression diffs) expect, and every recorded
   number must be a finite measurement — a NaN or infinity in a
   baseline silently poisons later before/after comparisons.

   The parser below is a deliberately tiny recursive-descent JSON
   reader: the repo takes no JSON dependency, and the bench emitter
   (bench/main.ml) writes only objects, strings and numbers. *)

(* ------------------------------------------------------------------ *)
(* Minimal JSON.                                                       *)

type json =
  | Obj of (string * json) list
  | Arr of json list
  | Str of string
  | Num of float
  | Bool of bool
  | Null

exception Bad of string

let parse (s : string) : json =
  let n = String.length s in
  let pos = ref 0 in
  let peek () = if !pos < n then Some s.[!pos] else None in
  let advance () = incr pos in
  let fail msg = raise (Bad (Printf.sprintf "%s at byte %d" msg !pos)) in
  let rec skip_ws () =
    match peek () with
    | Some (' ' | '\t' | '\n' | '\r') -> advance (); skip_ws ()
    | _ -> ()
  in
  let expect c =
    match peek () with
    | Some c' when c' = c -> advance ()
    | _ -> fail (Printf.sprintf "expected %c" c)
  in
  let literal word v =
    String.iter (fun c -> expect c) word;
    v
  in
  let string_lit () =
    expect '"';
    let b = Buffer.create 16 in
    let rec go () =
      match peek () with
      | None -> fail "unterminated string"
      | Some '"' -> advance ()
      | Some '\\' -> (
          advance ();
          match peek () with
          | Some (('"' | '\\' | '/') as c) -> advance (); Buffer.add_char b c; go ()
          | Some 'n' -> advance (); Buffer.add_char b '\n'; go ()
          | Some 't' -> advance (); Buffer.add_char b '\t'; go ()
          | _ -> fail "unsupported escape")
      | Some c -> advance (); Buffer.add_char b c; go ()
    in
    go ();
    Buffer.contents b
  in
  let number () =
    let start = !pos in
    let is_num_char = function
      | '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true
      | _ -> false
    in
    while (match peek () with Some c -> is_num_char c | None -> false) do
      advance ()
    done;
    let lit = String.sub s start (!pos - start) in
    match float_of_string_opt lit with
    | Some f -> f
    | None -> fail (Printf.sprintf "bad number %S" lit)
  in
  let rec value () =
    skip_ws ();
    match peek () with
    | Some '{' ->
        advance ();
        skip_ws ();
        if peek () = Some '}' then (advance (); Obj [])
        else
          let rec members acc =
            skip_ws ();
            let k = string_lit () in
            skip_ws ();
            expect ':';
            let v = value () in
            skip_ws ();
            match peek () with
            | Some ',' -> advance (); members ((k, v) :: acc)
            | Some '}' -> advance (); Obj (List.rev ((k, v) :: acc))
            | _ -> fail "expected , or } in object"
          in
          members []
    | Some '[' ->
        advance ();
        skip_ws ();
        if peek () = Some ']' then (advance (); Arr [])
        else
          let rec elems acc =
            let v = value () in
            skip_ws ();
            match peek () with
            | Some ',' -> advance (); elems (v :: acc)
            | Some ']' -> advance (); Arr (List.rev (v :: acc))
            | _ -> fail "expected , or ] in array"
          in
          elems []
    | Some '"' -> Str (string_lit ())
    | Some 't' -> literal "true" (Bool true)
    | Some 'f' -> literal "false" (Bool false)
    | Some 'n' -> literal "null" Null
    | Some ('-' | '0' .. '9') -> Num (number ())
    | _ -> fail "unexpected character"
  in
  let v = value () in
  skip_ws ();
  if !pos <> n then fail "trailing garbage";
  v

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

(* ------------------------------------------------------------------ *)
(* Per-file expectations.                                              *)

(* Committed artifacts live at the repo root; tests run from
   _build/default/test with the JSONs declared as deps (see dune). *)
let root = ".."

let expected_schemas =
  [ ("BENCH_crypto.json", "daric-bench-crypto/1");
    ("BENCH_mcheck.json", "daric-bench-mcheck/1");
    ("BENCH_mem.json", "daric-bench-mem/1");
    ("BENCH_scale.json", "daric-bench-scale/1");
    ("BENCH_tower.json", "daric-bench-tower/1") ]

let find_obj doc k =
  match doc with
  | Obj kvs -> List.assoc_opt k kvs
  | _ -> None

(* Walk every numeric leaf; [path] labels failures. *)
let rec check_numbers path = function
  | Num f ->
      if not (Float.is_finite f) then
        Alcotest.failf "%s: non-finite value %h" path f
  | Obj kvs -> List.iter (fun (k, v) -> check_numbers (path ^ "/" ^ k) v) kvs
  | Arr vs -> List.iteri (fun i v -> check_numbers (Printf.sprintf "%s[%d]" path i) v) vs
  | Str _ | Bool _ | Null -> ()

let check_file (name, schema) () =
  let doc =
    try parse (read_file (Filename.concat root name))
    with Bad msg -> Alcotest.failf "%s: parse error: %s" name msg
  in
  (match find_obj doc "schema" with
  | Some (Str s) ->
      Alcotest.(check string) (name ^ " schema") schema s
  | Some _ -> Alcotest.failf "%s: schema field is not a string" name
  | None -> Alcotest.failf "%s: missing schema field" name);
  (match find_obj doc "entries" with
  | Some (Obj kvs) ->
      if kvs = [] then Alcotest.failf "%s: empty entries" name;
      List.iter
        (fun (k, v) ->
          match v with
          | Num f ->
              if not (Float.is_finite f) then
                Alcotest.failf "%s: entry %s is non-finite" name k
          | _ -> Alcotest.failf "%s: entry %s is not a number" name k)
        kvs
  | Some _ -> Alcotest.failf "%s: entries is not an object" name
  | None -> Alcotest.failf "%s: missing entries object" name);
  check_numbers name doc

(* A BENCH file without a declared expectation means a new artifact
   slipped in without updating this suite (and its consumers). *)
let check_no_unknown () =
  Sys.readdir root |> Array.to_list
  |> List.filter (fun f ->
         String.length f > 6
         && String.sub f 0 6 = "BENCH_"
         && Filename.check_suffix f ".json")
  |> List.iter (fun f ->
         if not (List.mem_assoc f expected_schemas) then
           Alcotest.failf "unexpected bench artifact %s: add its schema here" f)

let () =
  Alcotest.run "daric-bench-schema"
    [ ( "artifacts",
        List.map
          (fun ((name, _) as spec) ->
            Alcotest.test_case name `Quick (check_file spec))
          expected_schemas
        @ [ Alcotest.test_case "no undeclared BENCH files" `Quick
              check_no_unknown ] ) ]
