(* Transaction-layer tests: txids, sighash flags (floating
   transactions), witness verification and weight accounting against
   the Appendix-H closed forms. *)

module Tx = Daric_tx.Tx
module Sighash = Daric_tx.Sighash
module Spend = Daric_tx.Spend
module Script = Daric_script.Script
module Schnorr = Daric_crypto.Schnorr
module Txs = Daric_core.Txs
module Keys = Daric_core.Keys
module Rng = Daric_util.Rng

let check_b = Alcotest.(check bool)
let check_i = Alcotest.(check int)

let dummy_outpoint c = { Tx.txid = String.make 32 c; vout = 0 }

let p2wpkh_out value pk =
  { Tx.value;
    spk = Tx.P2wpkh (Daric_crypto.Hash.hash160 (Schnorr.encode_public_key pk)) }

let test_txid_excludes_witness () =
  let rng = Rng.create ~seed:1 in
  let _, pk = Schnorr.keygen rng in
  let tx =
    Tx.make ~locktime:7 ~inputs:[ Tx.input_of_outpoint (dummy_outpoint 'a') ] ~outputs:[ p2wpkh_out 100 pk ] ()
  in
  let tx' = Tx.with_witnesses tx [ [ Tx.Data "w" ] ] in
  check_b "same txid with/without witness" true (Tx.txid tx = Tx.txid tx');
  let tx'' =
    Tx.make ~locktime:8 ~inputs:tx.Tx.inputs ~outputs:tx.Tx.outputs ()
  in
  check_b "locktime changes txid" true (Tx.txid tx <> Tx.txid tx'')

let test_sighash_flags () =
  let rng = Rng.create ~seed:2 in
  let _, pk = Schnorr.keygen rng in
  let mk inputs =
    Tx.make ~inputs ~locktime:500_000_001 ~outputs:[ p2wpkh_out 5 pk ] ()
  in
  let tx1 = mk [ Tx.input_of_outpoint (dummy_outpoint 'a') ] in
  let tx2 = mk [ Tx.input_of_outpoint (dummy_outpoint 'b') ] in
  check_b "SIGHASH_ALL covers inputs" true
    (Sighash.message All tx1 ~input_index:0 <> Sighash.message All tx2 ~input_index:0);
  check_b "ANYPREVOUT ignores inputs" true
    (Sighash.message Anyprevout tx1 ~input_index:0
    = Sighash.message Anyprevout tx2 ~input_index:0);
  check_b "flags are domain-separated" true
    (Sighash.message All tx1 ~input_index:0
    <> Sighash.message Anyprevout tx1 ~input_index:0)

let test_anyprevout_single () =
  let rng = Rng.create ~seed:3 in
  let _, pk = Schnorr.keygen rng in
  let base =
    Tx.make ~inputs:[ Tx.input_of_outpoint (dummy_outpoint 'a') ] ~outputs:[ p2wpkh_out 5 pk ] ()
  in
  (* adding a fee output beyond the signed index does not change the
     APO|SINGLE message (Section 8, fee handling) *)
  let with_fee =
    Tx.make ~locktime:base.Tx.locktime ~inputs:base.Tx.inputs
      ~outputs:(base.Tx.outputs @ [ p2wpkh_out 3 pk ])
      ()
  in
  check_b "extra output invisible to APO|SINGLE" true
    (Sighash.message Anyprevout_single base ~input_index:0
    = Sighash.message Anyprevout_single with_fee ~input_index:0);
  check_b "but visible to plain APO" true
    (Sighash.message Anyprevout base ~input_index:0
    <> Sighash.message Anyprevout with_fee ~input_index:0)

let test_p2wpkh_spend () =
  let rng = Rng.create ~seed:4 in
  let sk, pk = Schnorr.keygen rng in
  let spent = p2wpkh_out 50 pk in
  let tx =
    Tx.make ~inputs:[ Tx.input_of_outpoint (dummy_outpoint 'a') ] ~outputs:[ p2wpkh_out 50 pk ] ()
  in
  let sg = Sighash.sign sk All tx ~input_index:0 in
  let tx =
    Tx.with_witnesses tx [ [ Tx.Data sg; Tx.Data (Schnorr.encode_public_key pk) ] ]
  in
  check_b "valid spend" true
    (Spend.verify_input tx ~input_index:0 ~spent ~input_age:0 = Ok ());
  (* tampering with outputs invalidates the SIGHASH_ALL signature *)
  let tampered =
    Tx.make ~locktime:tx.Tx.locktime ~witnesses:tx.Tx.witnesses
      ~inputs:tx.Tx.inputs
      ~outputs:[ p2wpkh_out 49 pk ]
      ()
  in
  check_b "tampered outputs rejected" true
    (Spend.verify_input tampered ~input_index:0 ~spent ~input_age:0 <> Ok ())

let test_p2wsh_spend () =
  let rng = Rng.create ~seed:5 in
  let sk1, pk1 = Schnorr.keygen rng in
  let sk2, pk2 = Schnorr.keygen rng in
  let script =
    Script.multisig_2 (Schnorr.encode_public_key pk1) (Schnorr.encode_public_key pk2)
  in
  let spent = { Tx.value = 50; spk = Tx.P2wsh (Script.hash script) } in
  let tx =
    Tx.make ~inputs:[ Tx.input_of_outpoint (dummy_outpoint 'a') ] ~outputs:[ p2wpkh_out 50 pk1 ] ()
  in
  let s1 = Sighash.sign sk1 All tx ~input_index:0 in
  let s2 = Sighash.sign sk2 All tx ~input_index:0 in
  let good =
    Tx.with_witnesses tx [ [ Tx.Data ""; Tx.Data s1; Tx.Data s2; Tx.Wscript script ] ]
  in
  check_b "valid multisig spend" true
    (Spend.verify_input good ~input_index:0 ~spent ~input_age:0 = Ok ());
  let wrong_script =
    Tx.with_witnesses tx [ [ Tx.Data ""; Tx.Data s1; Tx.Data s2;
            Tx.Wscript (Script.p2pk (Schnorr.encode_public_key pk1)) ] ]
  in
  check_b "script hash mismatch" true
    (Spend.verify_input wrong_script ~input_index:0 ~spent ~input_age:0
    = Error Spend.Witness_script_mismatch);
  let one_sig =
    Tx.with_witnesses tx [ [ Tx.Data ""; Tx.Data s1; Tx.Data s1; Tx.Wscript script ] ]
  in
  check_b "duplicated signature rejected" true
    (Spend.verify_input one_sig ~input_index:0 ~spent ~input_age:0 <> Ok ())

(* ------------------------------------------------------------------ *)
(* Weight accounting: the Daric transactions we construct must weigh
   exactly what Appendix H computes for them. *)

let channel_txs () =
  let rng = Rng.create ~seed:6 in
  let keys_a = Keys.generate rng in
  let keys_b = Keys.generate rng in
  let pub_a = Keys.pub keys_a and pub_b = Keys.pub keys_b in
  let fund =
    Txs.gen_fund ~tid_a:(dummy_outpoint 'a') ~tid_b:(dummy_outpoint 'b')
      ~cash:100 ~pk_a:pub_a.Keys.main_pk ~pk_b:pub_b.Keys.main_pk
  in
  let funding = Tx.outpoint_of fund 0 in
  let cm_a, cm_b =
    Txs.gen_commit ~funding ~value:100 ~keys_a:pub_a ~keys_b:pub_b
      ~s0:500_000_000 ~i:3 ~rel_lock:144
  in
  (rng, keys_a, keys_b, pub_a, pub_b, fund, cm_a, cm_b)

let test_commit_weight () =
  let _, keys_a, keys_b, pub_a, pub_b, _, cm_a, _ = channel_txs () in
  ignore keys_b;
  let msg = Txs.commit_message cm_a in
  let sig_a = Daric_tx.Sighash.sign_message keys_a.Keys.main.sk All msg in
  let sig_b = Daric_tx.Sighash.sign_message keys_a.Keys.main.sk All msg in
  let full =
    Txs.complete_commit cm_a ~sig_a ~sig_b ~pk_a:pub_a.Keys.main_pk
      ~pk_b:pub_b.Keys.main_pk
  in
  (* Appendix H.2/H.3: commit = 224 witness + 94 non-witness bytes. *)
  check_i "commit witness bytes" 224 (Tx.witness_size full);
  check_i "commit non-witness bytes" 94 (Tx.non_witness_size full);
  check_i "commit weight" ((94 * 4) + 224) (Tx.weight full)

let test_split_weight () =
  let _, keys_a, keys_b, pub_a, pub_b, _, cm_a, _ = channel_txs () in
  let theta =
    Txs.balance_state ~pk_a:pub_a.Keys.main_pk ~pk_b:pub_b.Keys.main_pk
      ~bal_a:40 ~bal_b:60
  in
  let split = Txs.gen_split ~theta ~s0:500_000_000 ~i:3 in
  let msg = Txs.split_message split in
  let sig_a = Daric_tx.Sighash.sign_message keys_a.Keys.sp.sk Anyprevout msg in
  let sig_b = Daric_tx.Sighash.sign_message keys_b.Keys.sp.sk Anyprevout msg in
  let script =
    Txs.commit_script_of ~role:Keys.Alice ~keys_a:pub_a ~keys_b:pub_b
      ~s0:500_000_000 ~i:3 ~rel_lock:144
  in
  let full =
    Txs.complete_split split ~commit_outpoint:(Tx.outpoint_of cm_a 0)
      ~commit_script:script ~sig_a ~sig_b
  in
  (* Appendix H.3: split (m = 0) = 311 witness + 113 non-witness. *)
  check_i "split witness bytes" 311 (Tx.witness_size full);
  check_i "split non-witness bytes" 113 (Tx.non_witness_size full)

let test_revocation_weight () =
  let _, keys_a, keys_b, pub_a, pub_b, _, _, cm_b = channel_txs () in
  ignore keys_b;
  let rv_a, _ =
    Txs.gen_revoke ~pk_a:pub_a.Keys.main_pk ~pk_b:pub_b.Keys.main_pk ~cash:100
      ~s0:500_000_000 ~revoked:3
  in
  let msg = Txs.revoke_message rv_a in
  let sig1 = Daric_tx.Sighash.sign_message keys_a.Keys.rv'.sk Anyprevout msg in
  let script =
    Txs.commit_script_of ~role:Keys.Bob ~keys_a:pub_a ~keys_b:pub_b
      ~s0:500_000_000 ~i:3 ~rel_lock:144
  in
  let full =
    Txs.complete_revocation rv_a ~commit_outpoint:(Tx.outpoint_of cm_b 0)
      ~commit_script:script ~sig1 ~sig2:sig1
  in
  (* Appendix H.3: revocation = 311 witness + 82 non-witness;
     commit + revocation = 535 witness + 176 non-witness = 1239 WU. *)
  check_i "revocation witness bytes" 311 (Tx.witness_size full);
  check_i "revocation non-witness bytes" 82 (Tx.non_witness_size full);
  check_i "dishonest-closure weight" 1239 ((4 * (94 + 82)) + 224 + 311)

let test_vbytes_rounding () =
  let _, _, _, _, _, fund, _, _ = channel_txs () in
  check_i "vbytes = ceil(weight/4)" ((Tx.weight fund + 3) / 4) (Tx.vbytes fund)

let test_fund_value_conservation () =
  let _, _, _, _, _, fund, cm_a, _ = channel_txs () in
  check_i "funding output holds the cash" 100 (Tx.total_output_value fund);
  check_i "commit preserves value" 100 (Tx.total_output_value cm_a)

(* ------------------------------------------------------------------ *)
(* Fee handling (Section 8): attach a fee input/change to a
   transaction whose channel input carries an ANYPREVOUT|SINGLE
   signature. *)

let test_fee_attach_preserves_apo_single () =
  let rng = Rng.create ~seed:9 in
  let sk, pk = Schnorr.keygen rng in
  let fee_sk, fee_pk = Schnorr.keygen rng in
  let base =
    Tx.make ~inputs:[ Tx.input_of_outpoint (dummy_outpoint 'a') ] ~outputs:[ p2wpkh_out 500 pk ] ()
  in
  (* channel signature with APO|SINGLE over (nLT, outputs[0]) *)
  let chan_sig = Sighash.sign sk Anyprevout_single base ~input_index:0 in
  let base =
    Tx.with_witnesses base [ [ Tx.Data chan_sig; Tx.Data (Schnorr.encode_public_key pk) ] ]
  in
  let spent = p2wpkh_out 500 pk in
  check_b "base tx valid" true
    (Spend.verify_input base ~input_index:0 ~spent ~input_age:0 = Ok ());
  let with_fee =
    Daric_tx.Fee.attach base ~source:(dummy_outpoint 'f') ~source_value:300
      ~fee:100 ~key_sk:fee_sk
  in
  check_i "two inputs" 2 (List.length with_fee.Tx.inputs);
  check_i "change output" 200 ((List.nth with_fee.Tx.outputs 1).Tx.value);
  (* the ORIGINAL signature still verifies on input 0 of the new tx *)
  check_b "channel input still valid" true
    (Spend.verify_input with_fee ~input_index:0 ~spent ~input_age:0 = Ok ());
  (* and the fee input verifies too *)
  let fee_spent = p2wpkh_out 300 fee_pk in
  check_b "fee input valid" true
    (Spend.verify_input with_fee ~input_index:1 ~spent:fee_spent ~input_age:0
    = Ok ());
  check_i "fee computed" 100
    (Daric_tx.Fee.paid ~input_values:[ 500; 300 ] with_fee)

let test_fee_attach_breaks_sighash_all () =
  (* control: a SIGHASH_ALL channel signature does NOT survive fee
     attachment — exactly why the paper needs ANYPREVOUT|SINGLE here *)
  let rng = Rng.create ~seed:10 in
  let sk, pk = Schnorr.keygen rng in
  let fee_sk, _ = Schnorr.keygen rng in
  let base =
    Tx.make ~inputs:[ Tx.input_of_outpoint (dummy_outpoint 'a') ] ~outputs:[ p2wpkh_out 500 pk ] ()
  in
  let chan_sig = Sighash.sign sk All base ~input_index:0 in
  let base =
    Tx.with_witnesses base [ [ Tx.Data chan_sig; Tx.Data (Schnorr.encode_public_key pk) ] ]
  in
  let with_fee =
    Daric_tx.Fee.attach base ~source:(dummy_outpoint 'f') ~source_value:300
      ~fee:100 ~key_sk:fee_sk
  in
  let spent = p2wpkh_out 500 pk in
  check_b "ALL signature invalidated" true
    (Spend.verify_input with_fee ~input_index:0 ~spent ~input_age:0 <> Ok ())

let test_fee_rejects_bad_fee () =
  let rng = Rng.create ~seed:11 in
  let sk, _ = Schnorr.keygen rng in
  let base = Tx.make ~inputs:[] ~outputs:[] () in
  check_b "fee > value rejected" true
    (try
       ignore
         (Daric_tx.Fee.attach base ~source:(dummy_outpoint 'f') ~source_value:10
            ~fee:11 ~key_sk:sk);
       false
     with Invalid_argument _ -> true)

let () =
  Alcotest.run "daric-tx"
    [ ( "txid",
        [ Alcotest.test_case "witness excluded" `Quick test_txid_excludes_witness ] );
      ( "sighash",
        [ Alcotest.test_case "flags" `Quick test_sighash_flags;
          Alcotest.test_case "anyprevout|single" `Quick test_anyprevout_single ] );
      ( "spend",
        [ Alcotest.test_case "p2wpkh" `Quick test_p2wpkh_spend;
          Alcotest.test_case "p2wsh multisig" `Quick test_p2wsh_spend ] );
      ( "weights",
        [ Alcotest.test_case "commit" `Quick test_commit_weight;
          Alcotest.test_case "split" `Quick test_split_weight;
          Alcotest.test_case "revocation" `Quick test_revocation_weight;
          Alcotest.test_case "vbytes" `Quick test_vbytes_rounding;
          Alcotest.test_case "value conservation" `Quick
            test_fund_value_conservation ] );
      ( "fee",
        [ Alcotest.test_case "apo|single survives" `Quick
            test_fee_attach_preserves_apo_single;
          Alcotest.test_case "sighash_all breaks" `Quick
            test_fee_attach_breaks_sighash_all;
          Alcotest.test_case "bad fee rejected" `Quick test_fee_rejects_bad_fee ] ) ]
