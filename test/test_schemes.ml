(* Tests for the baseline channel schemes: eltoo (floating updates,
   override semantics, no punishment), Lightning (penalty, O(n)
   storage), Generalized (adaptor-signature punish) and the Appendix-H
   cost model. *)

module Tx = Daric_tx.Tx
module Ledger = Daric_chain.Ledger
module Eltoo = Daric_schemes.Eltoo
module Lightning = Daric_schemes.Lightning
module Generalized = Daric_schemes.Generalized
module Costmodel = Daric_schemes.Costmodel
module Rng = Daric_util.Rng

let check_b = Alcotest.(check bool)
let check_i = Alcotest.(check int)

let fresh () = (Ledger.create ~delta:1 (), Rng.create ~seed:21)

let settle (l : Ledger.t) n =
  for _ = 1 to n do
    ignore (Ledger.tick l)
  done

(* ---------------- eltoo ---------------- *)

let test_eltoo_close_latest () =
  let l, rng = fresh () in
  let ch = Eltoo.create ~ledger:l ~rng ~bal_a:700 ~bal_b:300 () in
  ignore (Eltoo.update ch ~bal_a:600 ~bal_b:400);
  ignore (Eltoo.update ch ~bal_a:500 ~bal_b:500);
  (* publish latest update from the funding output *)
  let upd =
    Eltoo.latest_update_completed ch ~from:`Funding
      ~outpoint:(Eltoo.funding_outpoint ch)
  in
  Ledger.post l upd ~delay:0;
  settle l 1;
  check_b "update on chain" true
    (Ledger.is_unspent l (Tx.outpoint_of upd 0));
  (* settlement blocked before T *)
  let st = Eltoo.latest_settlement_completed ch ~outpoint:(Tx.outpoint_of upd 0) in
  check_b "settlement blocked by CSV" true (Ledger.validate l st <> Ok ());
  settle l ch.Eltoo.rel_lock;
  check_b "settlement valid after T" true (Ledger.validate l st = Ok ());
  Ledger.post l st ~delay:0;
  settle l 1;
  let final = Option.get (Ledger.spender_of l (Tx.outpoint_of upd 0)) in
  check_b "settlement splits 500/500" true
    (List.map (fun (o : Tx.output) -> o.value) final.Tx.outputs = [ 500; 500 ])

let test_eltoo_override_old_update () =
  let l, rng = fresh () in
  let ch = Eltoo.create ~ledger:l ~rng ~bal_a:700 ~bal_b:300 () in
  let old0 = Eltoo.update ch ~bal_a:600 ~bal_b:400 in
  ignore (Eltoo.update ch ~bal_a:100 ~bal_b:900);
  (* the cheater publishes the old state-0 update *)
  let old_tx =
    Eltoo.complete_update ch old0 ~from:`Funding
      ~outpoint:(Eltoo.funding_outpoint ch)
  in
  Ledger.post l old_tx ~delay:0;
  settle l 1;
  (* the victim overrides it with the latest update before T expires *)
  let latest =
    Eltoo.latest_update_completed ch ~from:(`Update 0)
      ~outpoint:(Tx.outpoint_of old_tx 0)
  in
  Ledger.post l latest ~delay:0;
  settle l 1;
  check_b "latest overrode old" true
    (Ledger.is_unspent l (Tx.outpoint_of latest 0));
  (* and the OLD settlement cannot spend the NEW update output *)
  let stale_settlement =
    Eltoo.complete_settlement ch
      ( Tx.make ~locktime:ch.Eltoo.s0 ~inputs:[] ~outputs:[] (),
        ("", "") )
      ~i:0
      ~outpoint:(Tx.outpoint_of latest 0)
  in
  check_b "stale settlement invalid" true
    (Ledger.validate l stale_settlement <> Ok ())

let test_eltoo_old_update_cannot_spend_newer () =
  let l, rng = fresh () in
  let ch = Eltoo.create ~ledger:l ~rng ~bal_a:700 ~bal_b:300 () in
  let old0 = Eltoo.update ch ~bal_a:600 ~bal_b:400 in
  ignore (Eltoo.update ch ~bal_a:100 ~bal_b:900);
  let latest =
    Eltoo.latest_update_completed ch ~from:`Funding
      ~outpoint:(Eltoo.funding_outpoint ch)
  in
  Ledger.post l latest ~delay:0;
  settle l 1;
  (* state-1 update cannot spend the state-2 output: CLTV ordering *)
  let stale =
    Eltoo.complete_update ch old0 ~from:(`Update ch.Eltoo.sn)
      ~outpoint:(Tx.outpoint_of latest 0)
  in
  check_b "old update rejected on newer output" true
    (Ledger.validate l stale <> Ok ())

let test_eltoo_storage_constant () =
  let l, rng = fresh () in
  let ch = Eltoo.create ~ledger:l ~rng ~bal_a:700 ~bal_b:300 () in
  ignore (Eltoo.update ch ~bal_a:699 ~bal_b:301);
  let s1 = Eltoo.storage_bytes ch in
  for _ = 1 to 50 do
    ignore (Eltoo.update ch ~bal_a:650 ~bal_b:350)
  done;
  check_i "storage unchanged after 50 updates" s1 (Eltoo.storage_bytes ch)

(* ---------------- Lightning ---------------- *)

let test_lightning_penalty () =
  let l, rng = fresh () in
  let ch = Lightning.create ~ledger:l ~rng ~bal_a:600 ~bal_b:400 () in
  let old_a, _ = Lightning.update ch ~bal_a:100 ~bal_b:900 in
  (* A cheats with her old commit (she had 600) *)
  Ledger.post l old_a ~delay:0;
  settle l 1;
  (* B punishes the to_local output with the revealed secret *)
  match Lightning.penalty ch ~victim:`B ~published:old_a ~revoked_index:0 with
  | None -> Alcotest.fail "no penalty data"
  | Some pen ->
      check_b "penalty valid immediately" true (Ledger.validate l pen = Ok ());
      Ledger.post l pen ~delay:0;
      settle l 1;
      check_b "penalty confirmed" true
        (Ledger.spender_of l (Tx.outpoint_of old_a 0) <> None)

let test_lightning_sweep_after_delay () =
  let l, rng = fresh () in
  let ch = Lightning.create ~ledger:l ~rng ~bal_a:600 ~bal_b:400 () in
  ignore (Lightning.update ch ~bal_a:500 ~bal_b:500);
  let commit = Lightning.commit_of ch `A in
  Ledger.post l commit ~delay:0;
  settle l 1;
  let sweep = Lightning.sweep_to_local ch ~who:`A ~published:commit in
  check_b "sweep blocked before T" true (Ledger.validate l sweep <> Ok ());
  settle l ch.Lightning.rel_lock;
  check_b "sweep valid after T" true (Ledger.validate l sweep = Ok ())

let test_lightning_no_penalty_for_latest () =
  let l, rng = fresh () in
  let ch = Lightning.create ~ledger:l ~rng ~bal_a:600 ~bal_b:400 () in
  ignore (Lightning.update ch ~bal_a:500 ~bal_b:500);
  let latest = Lightning.commit_of ch `A in
  Ledger.post l latest ~delay:0;
  settle l 1;
  check_b "no secret for the latest state" true
    (Lightning.penalty ch ~victim:`B ~published:latest ~revoked_index:ch.Lightning.sn
    = None)

let test_lightning_storage_grows () =
  let l, rng = fresh () in
  let ch = Lightning.create ~ledger:l ~rng ~bal_a:600 ~bal_b:400 () in
  ignore (Lightning.update ch ~bal_a:599 ~bal_b:401);
  let s1 = Lightning.storage_bytes ch ~who:`A in
  for _ = 1 to 50 do
    ignore (Lightning.update ch ~bal_a:550 ~bal_b:450)
  done;
  let s2 = Lightning.storage_bytes ch ~who:`A in
  check_b "storage grows linearly" true (s2 - s1 = 50 * 8);
  check_i "watchtower grows too" ((ch.Lightning.sn) * 40)
    (Lightning.watchtower_bytes ch)

(* ---------------- Generalized ---------------- *)

let test_generalized_punish () =
  let l, rng = fresh () in
  let ch = Generalized.create ~ledger:l ~rng ~bal_a:600 ~bal_b:400 () in
  let old = Generalized.update ch ~bal_a:100 ~bal_b:900 in
  (* A publishes the revoked commit, revealing her publishing witness *)
  let published = Generalized.publish_commit_as_a ch old in
  Ledger.post l published ~delay:0;
  settle l 1;
  check_b "revoked commit on chain" true
    (Ledger.is_unspent l (Tx.outpoint_of published 0));
  (* B extracts the witness and punishes instantly *)
  (match Generalized.punish_as_b ch ~published old with
  | None -> Alcotest.fail "no punish data"
  | Some pen ->
      check_b "punish valid before the CSV delay" true
        (Ledger.validate l pen = Ok ());
      Ledger.post l pen ~delay:0;
      settle l 1;
      let sp = Option.get (Ledger.spender_of l (Tx.outpoint_of published 0)) in
      check_i "B takes all funds" 1000 (Tx.total_output_value sp))

let test_generalized_latest_safe () =
  let l, rng = fresh () in
  let ch = Generalized.create ~ledger:l ~rng ~bal_a:600 ~bal_b:400 () in
  ignore (Generalized.update ch ~bal_a:500 ~bal_b:500);
  let published = Generalized.commit_completed_latest ch in
  Ledger.post l published ~delay:0;
  settle l 1;
  (* split blocked before delta, valid after *)
  let split = Generalized.split_completed ch in
  check_b "split blocked before delay" true (Ledger.validate l split <> Ok ());
  settle l ch.Generalized.rel_lock;
  check_b "split valid after delay" true (Ledger.validate l split = Ok ());
  Ledger.post l split ~delay:0;
  settle l 1;
  let sp = Option.get (Ledger.spender_of l (Tx.outpoint_of published 0)) in
  check_b "split pays 500/500" true
    (List.map (fun (o : Tx.output) -> o.value) sp.Tx.outputs = [ 500; 500 ])

let test_generalized_storage_grows () =
  let l, rng = fresh () in
  let ch = Generalized.create ~ledger:l ~rng ~bal_a:600 ~bal_b:400 () in
  ignore (Generalized.update ch ~bal_a:599 ~bal_b:401);
  let s1 = Generalized.storage_bytes ch ~who:`B in
  for _ = 1 to 40 do
    ignore (Generalized.update ch ~bal_a:550 ~bal_b:450)
  done;
  check_b "storage grows linearly" true
    (Generalized.storage_bytes ch ~who:`B - s1 = 40 * 36)

(* ---------------- cost model ---------------- *)

let test_costmodel_matches_table3 () =
  let weight_at name ~m scenario =
    let s = List.find (fun s -> s.Costmodel.name = name) Costmodel.all in
    let c =
      match scenario with
      | `D -> s.Costmodel.dishonest ~m
      | `N -> s.Costmodel.non_collaborative ~m
    in
    int_of_float (Costmodel.weight c)
  in
  check_i "Daric dishonest = 1239" 1239 (weight_at "Daric" ~m:0 `D);
  check_i "Daric non-collab = 1363" 1363 (weight_at "Daric" ~m:0 `N);
  check_i "Lightning dishonest = 1209" 1209 (weight_at "Lightning" ~m:0 `D);
  check_i "Generalized dishonest = 1342" 1342 (weight_at "Generalized" ~m:0 `D);
  check_i "FPPW dishonest = 2045" 2045 (weight_at "FPPW" ~m:0 `D);
  check_i "Cerberus dishonest = 1798" 1798 (weight_at "Cerberus" ~m:0 `D);
  check_i "Outpost dishonest = 2632" 2632 (weight_at "Outpost" ~m:0 `D);
  check_i "Sleepy dishonest = 2172" 2172 (weight_at "Sleepy" ~m:0 `D);
  check_i "eltoo dishonest = 2268" 2268 (weight_at "eltoo" ~m:0 `D);
  check_i "eltoo non-collab = 1588" 1588 (weight_at "eltoo" ~m:0 `N);
  check_i "eltoo dishonest m=1 = 2964" 2964 (weight_at "eltoo" ~m:1 `D);
  check_i "Daric non-collab m=1 = 2059" 2059 (weight_at "Daric" ~m:1 `N)

(* The paper's headline claims about who wins. *)
let test_costmodel_claims () =
  let w name ~m scenario =
    let s = List.find (fun s -> s.Costmodel.name = name) Costmodel.all in
    Costmodel.weight
      (match scenario with
      | `D -> s.Costmodel.dishonest ~m
      | `N -> s.Costmodel.non_collaborative ~m)
  in
  (* dishonest closure: Daric beats everything for any m >= 1, and
     Lightning too once it has at least one HTLC *)
  List.iter
    (fun m ->
      List.iter
        (fun (s : Costmodel.scheme) ->
          if s.Costmodel.name <> "Daric" && (m = 0 || s.supports_htlc) then
            check_b
              (Fmt.str "Daric dishonest beats %s at m=%d" s.name m)
              true
              (w "Daric" ~m `D <= w s.name ~m `D))
        Costmodel.all)
    [ 1; 5; 10; 100 ];
  (* non-collaborative: Daric beats Generalized, eltoo, FPPW for all m;
     beats Lightning for m > 6 *)
  List.iter
    (fun m ->
      List.iter
        (fun name ->
          check_b
            (Fmt.str "Daric non-collab beats %s at m=%d" name m)
            true
            (w "Daric" ~m `N <= w name ~m `N))
        [ "Generalized"; "eltoo"; "FPPW" ])
    [ 0; 1; 5; 10; 100; 966 ];
  check_b "Lightning cheaper at m=6" true (w "Lightning" ~m:6 `N < w "Daric" ~m:6 `N);
  check_b "Daric cheaper at m=7" true (w "Daric" ~m:7 `N < w "Lightning" ~m:7 `N)

let prop_weights_monotonic_in_m =
  QCheck.Test.make ~name:"closure weight monotone in m" ~count:100
    QCheck.(pair (int_bound 100) (int_bound 100))
    (fun (m1, m2) ->
      let m1, m2 = (min m1 m2, max m1 m2) in
      List.for_all
        (fun (s : Costmodel.scheme) ->
          (not s.Costmodel.supports_htlc)
          || Costmodel.weight (s.non_collaborative ~m:m1)
             <= Costmodel.weight (s.non_collaborative ~m:m2))
        Costmodel.all)



(* ---------------- FPPW ---------------- *)

module Fppw = Daric_schemes.Fppw

let test_fppw_punish () =
  let l, rng = fresh () in
  let ch = Fppw.create ~ledger:l ~rng ~bal_a:600 ~bal_b:400 () in
  let old = Fppw.update ch ~bal_a:100 ~bal_b:900 in
  Ledger.post l old ~delay:0;
  settle l 1;
  (match Fppw.punish ch ~victim:`B ~published:old with
  | None -> Alcotest.fail "no FPPW punish data"
  | Some pen ->
      check_b "punish valid immediately" true (Ledger.validate l pen = Ok ());
      Ledger.post l pen ~delay:0;
      settle l 1;
      (* both commit outputs claimed, cash + collateral to the victim *)
      check_i "cash + collateral claimed" (1000 + 1000)
        (Tx.total_output_value
           (Option.get (Ledger.spender_of l (Tx.outpoint_of old 0)))))

let test_fppw_latest_safe () =
  let l, rng = fresh () in
  let ch = Fppw.create ~ledger:l ~rng ~bal_a:600 ~bal_b:400 () in
  ignore (Fppw.update ch ~bal_a:500 ~bal_b:500);
  let latest = Fppw.commit_latest ch in
  check_b "no punish data for latest" true
    (Fppw.punish ch ~victim:`B ~published:latest = None)

let test_fppw_measured_weight () =
  (* Appendix H.5 quotes 2045 WU for the dishonest closure, but its
     non-witness count for the revocation lists one 41-byte input while
     the witness covers two — our constructed transactions carry both
     inputs, giving 2209 WU. The commit matches exactly. *)
  let l, rng = fresh () in
  let ch = Fppw.create ~ledger:l ~rng ~bal_a:600 ~bal_b:400 () in
  let old = Fppw.update ch ~bal_a:100 ~bal_b:900 in
  check_i "commit witness" 224 (Tx.witness_size old);
  check_i "commit non-witness" 137 (Tx.non_witness_size old);
  Ledger.post l old ~delay:0;
  settle l 1;
  match Fppw.punish ch ~victim:`B ~published:old with
  | Some pen ->
      (* paper says 897, but its 184-byte main-script listing omits the
         split branch's final OP_CHECKMULTISIG — the working script is
         185 bytes, giving 898 *)
      check_i "revocation witness (paper: 897)" 898 (Tx.witness_size pen);
      check_i "revocation carries 2 real inputs" 135 (Tx.non_witness_size pen)
  | None -> Alcotest.fail "no punish data"

let test_fppw_storage_and_ops () =
  let l, rng = fresh () in
  let ch = Fppw.create ~ledger:l ~rng ~bal_a:600 ~bal_b:400 () in
  ignore (Fppw.update ch ~bal_a:599 ~bal_b:401);
  let s1 = Fppw.storage_bytes ch ~who:`A in
  let w1 = Fppw.watchtower_bytes ch in
  for _ = 1 to 20 do
    ignore (Fppw.update ch ~bal_a:550 ~bal_b:450)
  done;
  check_b "party storage grows" true (Fppw.storage_bytes ch ~who:`A > s1);
  check_b "watchtower storage grows" true (Fppw.watchtower_bytes ch > w1);
  let s, v, e = Fppw.ops ch in
  check_b "ops per update 6/10/1" true (s = 21 * 6 && v = 21 * 10 && e = 21)

(* ---------------- Cerberus ---------------- *)

module Cerberus = Daric_schemes.Cerberus

let test_cerberus_punish () =
  let l, rng = fresh () in
  let ch = Cerberus.create ~ledger:l ~rng ~bal_a:600 ~bal_b:400 () in
  let old_a, _ = Cerberus.update ch ~bal_a:100 ~bal_b:900 in
  Ledger.post l old_a ~delay:0;
  settle l 1;
  (match Cerberus.punish ch ~victim:`B ~published:old_a with
  | None -> Alcotest.fail "no Cerberus punish data"
  | Some pen ->
      check_b "punish valid immediately" true (Ledger.validate l pen = Ok ());
      check_i "claims both outputs" 2 (List.length pen.Tx.inputs);
      Ledger.post l pen ~delay:0;
      settle l 1;
      check_i "full cash to victim" 1000 (Tx.total_output_value pen))

let test_cerberus_latest_safe () =
  let l, rng = fresh () in
  let ch = Cerberus.create ~ledger:l ~rng ~bal_a:600 ~bal_b:400 () in
  ignore (Cerberus.update ch ~bal_a:500 ~bal_b:500);
  let latest = Cerberus.commit_of ch `A in
  check_b "no punish data for latest" true
    (Cerberus.punish ch ~victim:`B ~published:latest = None)

let test_cerberus_measured_weight () =
  (* paper: commit 224+137, revocation 534+123 -> 1798 WU; our witness
     carries one extra branch-selector byte per input (536), which the
     paper's count omits *)
  let l, rng = fresh () in
  let ch = Cerberus.create ~ledger:l ~rng ~bal_a:600 ~bal_b:400 () in
  let old_a, _ = Cerberus.update ch ~bal_a:100 ~bal_b:900 in
  check_i "commit witness" 224 (Tx.witness_size old_a);
  check_i "commit non-witness" 137 (Tx.non_witness_size old_a);
  Ledger.post l old_a ~delay:0;
  settle l 1;
  match Cerberus.punish ch ~victim:`B ~published:old_a with
  | Some pen ->
      check_i "revocation witness (paper: 534)" 536 (Tx.witness_size pen);
      check_i "revocation non-witness" 123 (Tx.non_witness_size pen);
      check_i "115-byte output script" 115
        (Daric_script.Script.size
           (Cerberus.output_script ch ~rev_pk1:1 ~rev_pk2:1 ~delayed_pk:1))
  | None -> Alcotest.fail "no punish data"

let test_cerberus_sweep_after_delay () =
  let l, rng = fresh () in
  let ch = Cerberus.create ~ledger:l ~rng ~bal_a:600 ~bal_b:400 () in
  ignore (Cerberus.update ch ~bal_a:500 ~bal_b:500);
  let latest = Cerberus.commit_of ch `A in
  Ledger.post l latest ~delay:0;
  settle l 1;
  (* nobody can claim the outputs through the revocation branch of the
     LATEST state, and the delayed branch only opens after T *)
  check_b "to_local unspent" true (Ledger.is_unspent l (Tx.outpoint_of latest 0))


(* ---------------- Sleepy ---------------- *)

module Sleepy = Daric_schemes.Sleepy

let test_sleepy_punish_before_end () =
  let l, rng = fresh () in
  let ch = Sleepy.create ~t_end:50 ~ledger:l ~rng ~bal_a:600 ~bal_b:400 () in
  let old_a, _ = Sleepy.update ch ~bal_a:100 ~bal_b:900 in
  Ledger.post l old_a ~delay:0;
  settle l 1;
  (* the victim slept for a while, but wakes before T_end *)
  settle l 20;
  (match Sleepy.punish ch ~victim:`B ~published:old_a with
  | None -> Alcotest.fail "no sleepy punish data"
  | Some pen ->
      check_b "punish valid long after publication" true
        (Ledger.validate l pen = Ok ());
      Ledger.post l pen ~delay:0;
      settle l 1;
      check_b "cheater's balance claimed" true
        (Ledger.spender_of l (Tx.outpoint_of old_a 0) <> None))

let test_sleepy_sweep_only_after_end () =
  let l, rng = fresh () in
  let ch = Sleepy.create ~t_end:10 ~ledger:l ~rng ~bal_a:600 ~bal_b:400 () in
  ignore (Sleepy.update ch ~bal_a:500 ~bal_b:500);
  let latest = Sleepy.commit_of ch `A in
  Ledger.post l latest ~delay:0;
  settle l 1;
  let sweep = Sleepy.sweep_own ch ~who:`A ~published:latest in
  check_b "own sweep blocked before T_end" true (Ledger.validate l sweep <> Ok ());
  settle l 10;
  check_b "own sweep valid after T_end" true (Ledger.validate l sweep = Ok ())

let test_sleepy_cheater_wins_after_expiry () =
  (* the lifetime trade-off: if the victim sleeps past T_end, the
     cheater's sweep becomes valid and a race begins *)
  let l, rng = fresh () in
  let ch = Sleepy.create ~t_end:8 ~ledger:l ~rng ~bal_a:600 ~bal_b:400 () in
  (* the cheater keeps her state-0 revocation key alongside the commit *)
  let old_rev_pk = ch.Sleepy.a.Sleepy.rev_current.Daric_core.Keys.pk in
  let old_a, _ = Sleepy.update ch ~bal_a:100 ~bal_b:900 in
  Ledger.post l old_a ~delay:0;
  settle l 1;
  settle l 8 (* victim oversleeps past T_end *);
  let sweep = Sleepy.sweep_own ~rev_pk:old_rev_pk ch ~who:`A ~published:old_a in
  check_b "cheater sweep now valid" true (Ledger.validate l sweep = Ok ());
  Ledger.post l sweep ~delay:0;
  settle l 1;
  (* too late: the punish path is gone *)
  check_b "victim's punish now conflicts" true
    (match Sleepy.punish ch ~victim:`B ~published:old_a with
     | Some pen -> Ledger.validate l pen <> Ok ()
     | None -> false)

let test_sleepy_storage_and_lifetime () =
  let l, rng = fresh () in
  let ch = Sleepy.create ~t_end:1000 ~ledger:l ~rng ~bal_a:600 ~bal_b:400 () in
  ignore (Sleepy.update ch ~bal_a:599 ~bal_b:401);
  let s1 = Sleepy.storage_bytes ch ~who:`A in
  for _ = 1 to 30 do
    ignore (Sleepy.update ch ~bal_a:550 ~bal_b:450)
  done;
  check_b "O(n) party storage" true
    (Sleepy.storage_bytes ch ~who:`A - s1 = 30 * 8);
  settle l 5;
  check_b "lifetime is limited and ticking" true
    (Sleepy.remaining_lifetime ch = 1000 - 5)

(* ---------------- Outpost ---------------- *)

module Outpost = Daric_schemes.Outpost

let test_outpost_punish_via_embedded_data () =
  let l, rng = fresh () in
  let ch = Outpost.create ~ledger:l ~rng ~bal_a:600 ~bal_b:400 () in
  let old_a, _ = Outpost.update ch ~bal_a:100 ~bal_b:900 in
  Ledger.post l old_a ~delay:0;
  settle l 1;
  (match Outpost.punish ch ~victim:`B ~published:old_a with
  | None -> Alcotest.fail "no outpost punish data"
  | Some pen ->
      check_b "punish valid" true (Ledger.validate l pen = Ok ());
      Ledger.post l pen ~delay:0;
      settle l 1;
      check_b "cheater's balance claimed" true
        (Ledger.spender_of l (Tx.outpoint_of old_a 0) <> None))

let test_outpost_punish_deep_state () =
  (* hash-chain descent: punish a state revoked many updates ago *)
  let l, rng = fresh () in
  let ch = Outpost.create ~ledger:l ~rng ~bal_a:600 ~bal_b:400 () in
  let old0, _ = Outpost.update ch ~bal_a:550 ~bal_b:450 in
  for _ = 1 to 20 do
    ignore (Outpost.update ch ~bal_a:500 ~bal_b:500)
  done;
  Ledger.post l old0 ~delay:0;
  settle l 1;
  match Outpost.punish ch ~victim:`B ~published:old0 with
  | None -> Alcotest.fail "no punish data for deep state"
  | Some pen -> check_b "deep punish valid" true (Ledger.validate l pen = Ok ())

let test_outpost_latest_safe () =
  let l, rng = fresh () in
  let ch = Outpost.create ~ledger:l ~rng ~bal_a:600 ~bal_b:400 () in
  ignore (Outpost.update ch ~bal_a:500 ~bal_b:500);
  let latest = Outpost.commit_of ch `A in
  check_b "latest not punishable" true
    (Outpost.punish ch ~victim:`B ~published:latest = None)

let test_outpost_watchtower_constant () =
  let l, rng = fresh () in
  let ch = Outpost.create ~ledger:l ~rng ~bal_a:600 ~bal_b:400 () in
  let w1 = Outpost.watchtower_bytes ch in
  for _ = 1 to 30 do
    ignore (Outpost.update ch ~bal_a:500 ~bal_b:500)
  done;
  check_i "O(log n) watchtower storage (word-size constant)" w1
    (Outpost.watchtower_bytes ch);
  (* embedded data present in every commit *)
  check_b "commits carry embedded data" true
    (Outpost.embedded_values (Outpost.commit_of ch `A) <> None)

let () =
  Alcotest.run "daric-schemes"
    [ ( "eltoo",
        [ Alcotest.test_case "close with latest state" `Quick test_eltoo_close_latest;
          Alcotest.test_case "override old update" `Quick
            test_eltoo_override_old_update;
          Alcotest.test_case "state ordering" `Quick
            test_eltoo_old_update_cannot_spend_newer;
          Alcotest.test_case "O(1) storage" `Quick test_eltoo_storage_constant ] );
      ( "lightning",
        [ Alcotest.test_case "penalty on revoked commit" `Quick
            test_lightning_penalty;
          Alcotest.test_case "sweep after delay" `Quick
            test_lightning_sweep_after_delay;
          Alcotest.test_case "latest commit safe" `Quick
            test_lightning_no_penalty_for_latest;
          Alcotest.test_case "O(n) storage" `Quick test_lightning_storage_grows ] );
      ( "generalized",
        [ Alcotest.test_case "adaptor punish" `Quick test_generalized_punish;
          Alcotest.test_case "latest commit safe" `Quick test_generalized_latest_safe;
          Alcotest.test_case "O(n) storage" `Quick test_generalized_storage_grows ] );
      ( "costmodel",
        [ Alcotest.test_case "table 3 values" `Quick test_costmodel_matches_table3;
          Alcotest.test_case "paper claims" `Quick test_costmodel_claims;
          QCheck_alcotest.to_alcotest prop_weights_monotonic_in_m ] );
      ( "fppw",
        [ Alcotest.test_case "punish" `Quick test_fppw_punish;
          Alcotest.test_case "latest safe" `Quick test_fppw_latest_safe;
          Alcotest.test_case "measured weight" `Quick test_fppw_measured_weight;
          Alcotest.test_case "storage and ops" `Quick test_fppw_storage_and_ops ] );
      ( "cerberus",
        [ Alcotest.test_case "punish" `Quick test_cerberus_punish;
          Alcotest.test_case "latest safe" `Quick test_cerberus_latest_safe;
          Alcotest.test_case "measured weight" `Quick test_cerberus_measured_weight;
          Alcotest.test_case "sweep delay" `Quick test_cerberus_sweep_after_delay ] );
      ( "sleepy",
        [ Alcotest.test_case "punish before T_end" `Quick
            test_sleepy_punish_before_end;
          Alcotest.test_case "sweep after T_end" `Quick
            test_sleepy_sweep_only_after_end;
          Alcotest.test_case "cheater wins after expiry" `Quick
            test_sleepy_cheater_wins_after_expiry;
          Alcotest.test_case "storage and lifetime" `Quick
            test_sleepy_storage_and_lifetime ] );
      ( "outpost",
        [ Alcotest.test_case "punish via embedded data" `Quick
            test_outpost_punish_via_embedded_data;
          Alcotest.test_case "deep-state punish" `Quick
            test_outpost_punish_deep_state;
          Alcotest.test_case "latest safe" `Quick test_outpost_latest_safe;
          Alcotest.test_case "constant watchtower storage" `Quick
            test_outpost_watchtower_constant ] ) ]
